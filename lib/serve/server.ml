(** The Tkr_serve TCP query server: accept loop, per-connection reader
    threads, worker threads draining the admission queue, snapshot-aware
    result cache.  See the interface for the architecture overview. *)

module Middleware = Tkr_middleware.Middleware
module Database = Tkr_engine.Database
module Ast = Tkr_sql.Ast
module Diagnostic = Tkr_check.Diagnostic
module Trace = Tkr_obs.Trace
module Clock = Tkr_obs.Clock
module Json = Tkr_obs.Json
module Metrics = Tkr_obs.Metrics
open Tkr_relation

type config = {
  host : string;
  port : int;
  max_sessions : int;
  queue_depth : int;
  cache_mb : int;
  workers : int;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 7643;
    max_sessions = 64;
    queue_depth = 128;
    cache_mb = 64;
    workers = 8;
  }

(* a connection endpoint: workers and the reader thread both write
   response frames, serialized on [wlock] *)
type conn = { fd : Unix.file_descr; wlock : Mutex.t }

type job = {
  j_conn : conn;
  j_sess : Session.session;
  j_req : Wire.request;
  j_enq_ns : int64;
}

type t = {
  cfg : config;
  mw : Middleware.t;
  cache : Cache.t;
  sessions : Session.manager;
  queue : job Admission.t;
  listen_fd : Unix.file_descr;
  bound_port : int;
  stop_flag : bool Atomic.t;
  conns : (int, conn) Hashtbl.t;  (* live connections by session id *)
  conns_lock : Mutex.t;
  (* per-session execution chains: a session id is present iff one of its
     jobs is executing right now; jobs of that session taken from the
     admission queue meanwhile are deferred here and run, in FIFO order,
     by the worker finishing the current one — so a session has at most
     one request executing at a time and pipelined requests observe
     program order (an INSERT is visible to the SELECT behind it) *)
  order : (int, job Queue.t) Hashtbl.t;
  order_lock : Mutex.t;
  mutable accept_thread : Thread.t option;
  mutable worker_threads : Thread.t list;
  mutable conn_threads : Thread.t list;
  (* server metrics, registered in the middleware's registry so one
     OpenMetrics export covers engine and server *)
  m_requests : Metrics.counter;
  m_busy : Metrics.counter;
  m_deadline : Metrics.counter;
  m_errors : Metrics.counter;
  m_cache_hits : Metrics.counter;
  m_cache_misses : Metrics.counter;
  m_cache_evictions : Metrics.counter;
  m_latency : Metrics.histogram;
}

let locked mu f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

let port t = t.bound_port
let config t = t.cfg
let cache_stats t = Cache.stats t.cache
let stopping t = Atomic.get t.stop_flag

(* ---- replies ---- *)

let send_raw conn frame =
  (* the peer may be gone; a failed reply must not kill the worker *)
  try locked conn.wlock (fun () -> Wire.write_frame conn.fd frame)
  with Unix.Unix_error _ | Wire.Protocol_error _ -> ()

let send_error srv conn ~id code message =
  Metrics.incr srv.m_errors;
  send_raw conn (Wire.error_frame ~id { Wire.code; message })

(* ---- query execution ---- *)

(* the cache key: normalized final plan plus the post-plan shape
   (ordering, limit, snapshot rendering) — everything that determines the
   result bytes besides the dependency table states *)
let plan_key (p : Middleware.prepared) =
  String.concat "\x00"
    [
      Algebra.to_string p.Middleware.plan;
      String.concat ","
        (List.map
           (fun (i, asc) -> Printf.sprintf "%d%c" i (if asc then 'a' else 'd'))
           p.Middleware.order_by);
      (match p.Middleware.limit with Some n -> string_of_int n | None -> "");
      (if p.Middleware.snapshot then "s" else "");
      (match p.Middleware.as_of with Some v -> string_of_int v | None -> "");
    ]

let trace_json obs =
  match Trace.roots obs with
  | [] -> None
  | roots -> Some (Json.List (List.map Trace.to_json_value roots))

(* Run one plain query with the cache: (payload, cached, trace).  The
   read_locked bracket makes (version read, execute, cache fill) atomic
   with respect to DDL/DML — versions observed here are the versions the
   result was computed from. *)
let run_query srv sess (req : Wire.request) =
  Middleware.read_locked srv.mw @@ fun () ->
  let p = Session.prepared sess srv.mw req.Wire.stmt in
  let db = Middleware.database srv.mw in
  let key = plan_key p in
  let deps =
    List.map (fun tb -> (tb, Database.version db tb)) p.Middleware.tables
  in
  match Cache.find srv.cache ~key ~deps with
  | Some payload ->
      Metrics.incr srv.m_cache_hits;
      (payload, true, None)
  | None ->
      if Cache.enabled srv.cache then Metrics.incr srv.m_cache_misses;
      let obs = if req.Wire.trace then Trace.create () else Trace.disabled in
      let tbl = Middleware.run_prepared ~obs srv.mw p in
      let payload = Wire.body_to_payload (Wire.Rows tbl) in
      let evicted = Cache.add srv.cache ~key ~deps payload in
      if evicted > 0 then Metrics.add srv.m_cache_evictions evicted;
      (payload, false, trace_json obs)

(* DDL/DML and the meta statements (EXPLAIN, CHECK) bypass the cache;
   execute_statement takes the right middleware lock side itself *)
let run_statement srv stmt =
  match Middleware.execute_statement srv.mw stmt with
  | Middleware.Rows tbl -> Wire.body_to_payload (Wire.Rows tbl)
  | Middleware.Done msg -> Wire.body_to_payload (Wire.Message msg)

let execute srv (j : job) =
  let req = j.j_req in
  let id = req.Wire.id in
  let reply_ok (payload, cached, trace) =
    let elapsed_us =
      Int64.to_int (Int64.div (Int64.sub (Clock.now_ns ()) j.j_enq_ns) 1000L)
    in
    Metrics.observe srv.m_latency elapsed_us;
    send_raw j.j_conn (Wire.ok_frame ~id ~cached ~elapsed_us ?trace payload)
  in
  match
    (* plain queries go through the session's prepared table and the
       cache; EXPLAIN/CHECK/DDL/DML take the execute_statement path *)
    match Tkr_sql.Parser.statement req.Wire.stmt with
    | Ast.Query _ -> run_query srv j.j_sess req
    | stmt -> (run_statement srv stmt, false, None)
  with
  | result -> reply_ok result
  | exception Tkr_sql.Parser.Error d | exception Tkr_sql.Lexer.Error d ->
      send_error srv j.j_conn ~id Wire.Parse_error (Diagnostic.to_string d)
  | exception Middleware.Rejected diags ->
      send_error srv j.j_conn ~id Wire.Check_error
        (Diagnostic.report_to_text diags)
  | exception Middleware.Error d ->
      send_error srv j.j_conn ~id Wire.Runtime_error (Diagnostic.to_string d)
  | exception Tkr_sql.Analyzer.Error d ->
      send_error srv j.j_conn ~id Wire.Runtime_error (Diagnostic.to_string d)
  | exception Schema.Unknown name ->
      send_error srv j.j_conn ~id Wire.Runtime_error ("unknown name " ^ name)
  | exception exn ->
      send_error srv j.j_conn ~id Wire.Runtime_error (Printexc.to_string exn)

(* ---- per-session ordering ---- *)

(* Enqueue [job] preserving per-session FIFO order.  The caller is the
   session's reader thread, which sees requests in arrival order, and at
   most one job per session is ever inside the admission queue: when the
   session already holds a claim (a job executing or queued), the new job
   is deferred onto the session's chain instead, to be run by the worker
   finishing the current one.  Two workers can therefore never race on
   the order of one session's requests.  The chain is bounded by the
   admission depth, so a pipelining flood gets [`Busy] backpressure like
   everyone else. *)
let enqueue srv (job : job) =
  let sid = Session.id job.j_sess in
  if Admission.draining srv.queue then `Draining
  else
    let claim =
      locked srv.order_lock @@ fun () ->
      match Hashtbl.find_opt srv.order sid with
      | Some pending ->
          if Queue.length pending >= srv.cfg.queue_depth then `Busy
          else begin
            Queue.push job pending;
            `Deferred
          end
      | None ->
          Hashtbl.replace srv.order sid (Queue.create ());
          `Claimed
    in
    match claim with
    | (`Busy | `Deferred) as r -> r
    | `Claimed -> (
        match Admission.submit srv.queue job with
        | `Accepted -> `Accepted
        | (`Busy | `Draining) as r ->
            (* the job never entered the queue: release the fresh claim
               (its chain is empty — this reader is the only submitter) *)
            locked srv.order_lock (fun () -> Hashtbl.remove srv.order sid);
            r)

(* done with one job of the session: hand back its next deferred job, or
   release the session's claim when the chain is dry *)
let session_next srv (job : job) =
  let sid = Session.id job.j_sess in
  locked srv.order_lock @@ fun () ->
  match Hashtbl.find_opt srv.order sid with
  | Some pending when not (Queue.is_empty pending) -> Some (Queue.pop pending)
  | _ ->
      Hashtbl.remove srv.order sid;
      None

(* ---- worker threads ---- *)

let run_one srv (job : job) =
  Metrics.incr srv.m_requests;
  match job.j_req.Wire.deadline_ms with
  | Some budget_ms
    when Int64.to_int
           (Int64.div (Int64.sub (Clock.now_ns ()) job.j_enq_ns) 1_000_000L)
         >= budget_ms ->
      Metrics.incr srv.m_deadline;
      send_raw job.j_conn
        (Wire.error_frame ~id:job.j_req.Wire.id
           {
             Wire.code = Wire.Deadline_exceeded;
             message =
               Printf.sprintf "deadline of %d ms exceeded in queue" budget_ms;
           })
  | _ -> execute srv job

let worker_loop srv () =
  (* every job handed out by the admission queue carries its session's
     claim: run it, then drain the jobs deferred behind it in FIFO order *)
  let rec run_chain job =
    run_one srv job;
    match session_next srv job with
    | Some next -> run_chain next
    | None -> ()
  in
  let rec loop () =
    match Admission.take srv.queue with
    | None -> ()  (* drained and dry: exit *)
    | Some job ->
        run_chain job;
        loop ()
  in
  loop ()

(* ---- connection threads ---- *)

let conn_loop srv conn sess () =
  let sid = Session.id sess in
  let finally () =
    Session.close srv.sessions sess;
    (* deregister and prune this thread from the server's bookkeeping so
       a long-running server doesn't accumulate a Thread.t per connection
       ever accepted; the accept loop inserts the thread into
       [conn_threads] under [conns_lock] before releasing it, so the
       filter below can never run before the insertion *)
    let self = Thread.id (Thread.self ()) in
    locked srv.conns_lock (fun () ->
        Hashtbl.remove srv.conns sid;
        srv.conn_threads <-
          List.filter (fun th -> Thread.id th <> self) srv.conn_threads);
    (try Unix.close conn.fd with Unix.Unix_error _ -> ())
  in
  Fun.protect ~finally @@ fun () ->
  send_raw conn (Wire.greeting_frame ~session_id:sid);
  let rec loop () =
    match Wire.read_frame conn.fd with
    | None -> ()  (* clean close *)
    | Some frame ->
        (match Wire.request_of_json (Json.of_string frame) with
        | req -> (
            let job =
              { j_conn = conn; j_sess = sess; j_req = req;
                j_enq_ns = Clock.now_ns () }
            in
            match enqueue srv job with
            | `Accepted | `Deferred -> ()
            | `Busy ->
                Metrics.incr srv.m_busy;
                send_error srv conn ~id:req.Wire.id Wire.Server_busy
                  "admission queue full, retry later"
            | `Draining ->
                send_error srv conn ~id:req.Wire.id Wire.Server_shutdown
                  "server is draining")
        | exception (Wire.Protocol_error msg | Json.Parse_error msg) ->
            send_error srv conn ~id:0 Wire.Protocol_violation msg);
        loop ()
  in
  try loop () with
  | Wire.Protocol_error _ -> ()  (* torn frame: drop the connection *)
  | Unix.Unix_error _ -> ()

(* ---- accept loop ---- *)

let accept_loop srv () =
  (* select with a timeout so the loop notices [stop] promptly without a
     wakeup pipe; the listen socket stays blocking for the accept itself *)
  let rec loop () =
    if not (Atomic.get srv.stop_flag) then begin
      (match Unix.select [ srv.listen_fd ] [] [] 0.1 with
      | [ _ ], _, _ when not (Atomic.get srv.stop_flag) -> (
          match Unix.accept ~cloexec:true srv.listen_fd with
          | exception Unix.Unix_error _ -> ()
          | fd, _peer -> (
              (try Unix.setsockopt fd Unix.TCP_NODELAY true
               with Unix.Unix_error _ -> ());
              let conn = { fd; wlock = Mutex.create () } in
              match Session.open_session srv.sessions with
              | None ->
                  send_raw conn
                    (Wire.error_frame ~id:0
                       {
                         Wire.code = Wire.Session_limit;
                         message =
                           Printf.sprintf "session limit of %d reached"
                             srv.cfg.max_sessions;
                       });
                  (try Unix.close fd with Unix.Unix_error _ -> ())
              | Some sess ->
                  locked srv.conns_lock (fun () ->
                      Hashtbl.replace srv.conns (Session.id sess) conn;
                      srv.conn_threads <-
                        Thread.create (conn_loop srv conn sess) ()
                        :: srv.conn_threads)))
      | _ -> ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | exception Unix.Unix_error _ ->
          (* EBADF in a stop race, EMFILE pressure, ...: the accept loop
             must survive — back off briefly (a persistent error would
             otherwise spin hot) and re-check [stop_flag] *)
          Thread.delay 0.05);
      loop ()
    end
  in
  loop ()

(* ---- lifecycle ---- *)

let start ?(config = default_config) mw =
  let listen_fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
     Unix.bind listen_fd
       (Unix.ADDR_INET (Unix.inet_addr_of_string config.host, config.port));
     Unix.listen listen_fd 64
   with e ->
     (try Unix.close listen_fd with Unix.Unix_error _ -> ());
     raise e);
  let bound_port =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> config.port
  in
  let reg = Middleware.metrics mw in
  let srv =
    {
      cfg = config;
      mw;
      cache = Cache.create ~max_bytes:(config.cache_mb * 1024 * 1024);
      sessions = Session.manager ~max_sessions:config.max_sessions;
      queue = Admission.create ~depth:config.queue_depth;
      listen_fd;
      bound_port;
      stop_flag = Atomic.make false;
      conns = Hashtbl.create 64;
      conns_lock = Mutex.create ();
      order = Hashtbl.create 64;
      order_lock = Mutex.create ();
      accept_thread = None;
      worker_threads = [];
      conn_threads = [];
      m_requests = Metrics.counter reg "serve_requests_total";
      m_busy = Metrics.counter reg "serve_busy_total";
      m_deadline = Metrics.counter reg "serve_deadline_exceeded_total";
      m_errors = Metrics.counter reg "serve_errors_total";
      m_cache_hits = Metrics.counter reg "serve_cache_hits_total";
      m_cache_misses = Metrics.counter reg "serve_cache_misses_total";
      m_cache_evictions = Metrics.counter reg "serve_cache_evictions_total";
      m_latency = Metrics.histogram reg "serve_latency_us";
    }
  in
  srv.worker_threads <-
    List.init (max 1 config.workers) (fun _ -> Thread.create (worker_loop srv) ());
  srv.accept_thread <- Some (Thread.create (accept_loop srv) ());
  srv

let stop srv =
  if Atomic.compare_and_set srv.stop_flag false true then begin
    (* 1. stop accepting connections *)
    (match srv.accept_thread with Some th -> Thread.join th | None -> ());
    (try Unix.close srv.listen_fd with Unix.Unix_error _ -> ());
    (* 2. drain: no new requests; workers finish everything accepted *)
    Admission.drain srv.queue;
    List.iter Thread.join srv.worker_threads;
    (* 3. wake blocked readers (EOF) and join connection threads *)
    let conn_fds =
      locked srv.conns_lock (fun () ->
          Hashtbl.fold (fun _ c acc -> c.fd :: acc) srv.conns [])
    in
    List.iter
      (fun fd ->
        try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
      conn_fds;
    let threads = locked srv.conns_lock (fun () -> srv.conn_threads) in
    List.iter Thread.join threads
  end
