(** The Tkr_serve TCP query server: accept loop, per-connection reader
    threads, worker threads draining the admission queue, snapshot-aware
    result cache, live telemetry.  See the interface for the architecture
    overview. *)

module Middleware = Tkr_middleware.Middleware
module Database = Tkr_engine.Database
module Table = Tkr_engine.Table
module Ast = Tkr_sql.Ast
module Diagnostic = Tkr_check.Diagnostic
module Trace = Tkr_obs.Trace
module Clock = Tkr_obs.Clock
module Json = Tkr_obs.Json
module Metrics = Tkr_obs.Metrics
module Openmetrics = Tkr_obs.Openmetrics
module Tel = Tkr_tel.Tel
module Record = Tkr_rec.Record
module Ledger = Tkr_rec.Ledger
open Tkr_relation

type config = {
  host : string;
  port : int;
  max_sessions : int;
  queue_depth : int;
  cache_mb : int;
  workers : int;
  slow_ms : int;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 7643;
    max_sessions = 64;
    queue_depth = 128;
    cache_mb = 64;
    workers = 8;
    slow_ms = 500;
  }

(* a connection endpoint: workers and the reader thread both write
   response frames, serialized on [wlock] *)
type conn = { fd : Unix.file_descr; wlock : Mutex.t }

type job = {
  j_conn : conn;
  j_sess : Session.session;
  j_req : Wire.request;
  j_enq_ns : int64;
  j_seq : int;  (* global arrival order, stamped at admission *)
  j_arrive_ms : int;  (* wall-clock arrival, for the flight recorder *)
  j_trace : string option;
      (* the request's correlation id: the client's trace_id, or a
         server-generated one when telemetry is on (None when off — the
         response then carries no trace_id field at all) *)
}

type t = {
  cfg : config;
  mw : Middleware.t;
  cache : Cache.t;
  sessions : Session.manager;
  queue : job Admission.t;
  listen_fd : Unix.file_descr;
  bound_port : int;
  stop_flag : bool Atomic.t;
  conns : (int, conn) Hashtbl.t;  (* live connections by session id *)
  conns_lock : Mutex.t;
  (* per-session execution chains: a session id is present iff one of its
     jobs is executing right now; jobs of that session taken from the
     admission queue meanwhile are deferred here and run, in FIFO order,
     by the worker finishing the current one — so a session has at most
     one request executing at a time and pipelined requests observe
     program order (an INSERT is visible to the SELECT behind it) *)
  order : (int, job Queue.t) Hashtbl.t;
  order_lock : Mutex.t;
  mutable accept_thread : Thread.t option;
  mutable worker_threads : Thread.t list;
  mutable conn_threads : Thread.t list;
  (* telemetry *)
  tel : Tel.t;
  trace_seq : int Atomic.t;  (* server-generated trace-id counter *)
  start_ns : int64;
  env : Tkr_perf.Env.t;  (* build info for the METRICS exposition *)
  (* flight recorder (disabled unless [serve --record]) and the
     per-fingerprint resource ledger (always on: it also backs the
     slow-query view in STATS and [tkr_cli top]) *)
  recorder : Record.t;
  ledger : Ledger.t;
  arrive_seq : int Atomic.t;  (* stamps [j_seq] *)
  (* server metrics, registered in the middleware's registry so one
     OpenMetrics export covers engine and server *)
  m_requests : Metrics.counter;
  m_busy : Metrics.counter;
  m_deadline : Metrics.counter;
  m_errors : Metrics.counter;
  m_cache_hits : Metrics.counter;
  m_cache_misses : Metrics.counter;
  m_cache_evictions : Metrics.counter;
  m_latency : Metrics.histogram;
  (* live levels; [sync_gauges] refreshes the sampled ones at scrape
     time, [g_inflight] is maintained by the workers *)
  g_queue : Metrics.gauge;
  g_inflight : Metrics.gauge;
  g_sessions : Metrics.gauge;
  g_cache_entries : Metrics.gauge;
  g_cache_bytes : Metrics.gauge;
  g_pool : Metrics.gauge;
  g_uptime : Metrics.gauge;
  (* temporal interval index activity (Tkr_idx.Stats), sampled at
     scrape time like the other levels *)
  g_idx_built : Metrics.gauge;
  g_idx_rebuilds : Metrics.gauge;
  g_idx_probes : Metrics.gauge;
  g_idx_candidates : Metrics.gauge;
}

let locked mu f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

let port t = t.bound_port
let config t = t.cfg
let cache_stats t = Cache.stats t.cache
let stopping t = Atomic.get t.stop_flag
let telemetry t = t.tel
let recorder t = t.recorder
let ledger t = t.ledger

let uptime_s srv =
  Int64.to_int (Int64.div (Int64.sub (Clock.now_ns ()) srv.start_ns) 1_000_000_000L)

(* ---- replies ---- *)

let send_raw conn frame =
  (* the peer may be gone; a failed reply must not kill the worker *)
  try locked conn.wlock (fun () -> Wire.write_frame conn.fd frame)
  with Unix.Unix_error _ | Wire.Protocol_error _ -> ()

let send_error srv conn ~id ?trace_id code message =
  Metrics.incr srv.m_errors;
  send_raw conn (Wire.error_frame ~id ?trace_id { Wire.code; message })

(* ---- query execution ---- *)

(* the cache key: normalized final plan plus the post-plan shape
   (ordering, limit, snapshot rendering) — everything that determines the
   result bytes besides the dependency table states *)
let plan_key (p : Middleware.prepared) =
  String.concat "\x00"
    [
      Algebra.to_string p.Middleware.plan;
      String.concat ","
        (List.map
           (fun (i, asc) -> Printf.sprintf "%d%c" i (if asc then 'a' else 'd'))
           p.Middleware.order_by);
      (match p.Middleware.limit with Some n -> string_of_int n | None -> "");
      (if p.Middleware.snapshot then "s" else "");
      (match p.Middleware.as_of with Some v -> string_of_int v | None -> "");
    ]

(* the short digest of a cache key: the identity that the slow-query log
   and [top] aggregate on — statements normalizing to the same plan
   share one fingerprint *)
let fingerprint (key : string) : string =
  String.sub (Digest.to_hex (Digest.string key)) 0 12

let trace_json obs =
  match Trace.roots obs with
  | [] -> None
  | roots -> Some (Json.List (List.map Trace.to_json_value roots))

(* what [execute] reports back to the worker loop for telemetry, the
   resource ledger and the flight recorder *)
type outcome = {
  o_status : string;  (* "ok" or the wire error code *)
  o_cached : bool;
  o_fp : string;  (* plan fingerprint (digest of statement for non-queries) *)
  o_disposition : string;  (* hit | miss | bypass | off | error *)
  o_epoch : int;  (* catalog epoch observed at execution *)
  o_deps : (string * int) list;  (* table-version vector at execution *)
  o_rows_in : int;  (* total cardinality of the dependency tables *)
  o_rows_out : int;
  o_digest : string;  (* response digest; "" when recording is off *)
}

(* one executed query, before the envelope is assembled *)
type qres = {
  q_payload : string;
  q_cached : bool;
  q_trace : Json.t option;
  q_fp : string;
  q_disposition : string;
  q_epoch : int;
  q_deps : (string * int) list;
  q_rows_in : int;
  q_rows_out : int;
}

(* Run one plain query with the cache.  The read_locked bracket makes
   (version read, execute, cache fill) atomic with respect to DDL/DML —
   versions observed here are the versions the result was computed
   from. *)
let run_query srv sess (req : Wire.request) trace_id : qres =
  Middleware.read_locked srv.mw @@ fun () ->
  let p = Session.prepared sess srv.mw req.Wire.stmt in
  let db = Middleware.database srv.mw in
  let key = plan_key p in
  let fp = fingerprint key in
  let deps =
    List.map (fun tb -> (tb, Database.version db tb)) p.Middleware.tables
  in
  let epoch = Middleware.epoch srv.mw in
  let rows_in =
    List.fold_left
      (fun acc tb -> acc + Table.cardinality (Database.find db tb))
      0 p.Middleware.tables
  in
  let tel = srv.tel in
  let execute_fresh disposition =
    let obs = if req.Wire.trace then Trace.create () else Trace.disabled in
    let tbl =
      (* tie the execution trace to the request's correlation id: the
         extra root span only appears when the response carries a
         trace_id, so trace output without one is unchanged *)
      match trace_id with
      | Some tid when req.Wire.trace ->
          Trace.with_span obs "request" (fun sp ->
              Trace.set_str sp "trace_id" tid;
              Middleware.run_prepared ~obs srv.mw p)
      | _ -> Middleware.run_prepared ~obs srv.mw p
    in
    let rows_out = Table.cardinality tbl in
    let payload = Wire.body_to_payload (Wire.Rows tbl) in
    let evicted = Cache.add srv.cache ~rows:rows_out ~key ~deps payload in
    if evicted > 0 then begin
      Metrics.add srv.m_cache_evictions evicted;
      if Tel.enabled tel then Tel.emit tel (Tel.Cache_evict { count = evicted })
    end;
    {
      q_payload = payload;
      q_cached = false;
      q_trace = trace_json obs;
      q_fp = fp;
      q_disposition = disposition;
      q_epoch = epoch;
      q_deps = deps;
      q_rows_in = rows_in;
      q_rows_out = rows_out;
    }
  in
  if not (Cache.enabled srv.cache) then execute_fresh "off"
  else
    match Cache.lookup srv.cache ~key ~deps with
    | Cache.Hit (payload, rows) ->
        Metrics.incr srv.m_cache_hits;
        if Tel.enabled tel then Tel.emit tel (Tel.Cache_hit { fingerprint = fp });
        {
          q_payload = payload;
          q_cached = true;
          q_trace = None;
          q_fp = fp;
          q_disposition = "hit";
          q_epoch = epoch;
          q_deps = deps;
          q_rows_in = rows_in;
          q_rows_out = rows;
        }
    | Cache.Miss ->
        Metrics.incr srv.m_cache_misses;
        if Tel.enabled tel then
          Tel.emit tel (Tel.Cache_miss { fingerprint = fp });
        execute_fresh "miss"
    | Cache.Stale changed ->
        Metrics.incr srv.m_cache_misses;
        if Tel.enabled tel then begin
          List.iter
            (fun (table, version) ->
              Tel.emit tel (Tel.Invalidation { table; version }))
            changed;
          Tel.emit tel (Tel.Cache_miss { fingerprint = fp })
        end;
        execute_fresh "miss"

(* DDL/DML and the meta statements (EXPLAIN, CHECK) bypass the cache;
   execute_statement takes the right middleware lock side itself *)
let run_statement srv stmt : string * int =
  match Middleware.execute_statement srv.mw stmt with
  | Middleware.Rows tbl ->
      (Wire.body_to_payload (Wire.Rows tbl), Table.cardinality tbl)
  | Middleware.Done msg -> (Wire.body_to_payload (Wire.Message msg), 0)

let execute srv (j : job) : outcome =
  let req = j.j_req in
  let id = req.Wire.id in
  let trace_id = j.j_trace in
  let stmt_fp () = fingerprint req.Wire.stmt in
  (* digesting the response costs an MD5 over the payload: only when the
     flight recorder will consume it *)
  let digest_ok payload =
    if Record.enabled srv.recorder then Record.digest payload else ""
  in
  let reply_ok (q : qres) =
    let elapsed_us =
      Int64.to_int (Int64.div (Int64.sub (Clock.now_ns ()) j.j_enq_ns) 1000L)
    in
    Metrics.observe srv.m_latency elapsed_us;
    send_raw j.j_conn
      (Wire.ok_frame ~id ~cached:q.q_cached ~elapsed_us ?trace:q.q_trace
         ?trace_id q.q_payload);
    {
      o_status = "ok";
      o_cached = q.q_cached;
      o_fp = q.q_fp;
      o_disposition = q.q_disposition;
      o_epoch = q.q_epoch;
      o_deps = q.q_deps;
      o_rows_in = q.q_rows_in;
      o_rows_out = q.q_rows_out;
      o_digest = digest_ok q.q_payload;
    }
  in
  let fail code message =
    send_error srv j.j_conn ~id ?trace_id code message;
    {
      o_status = Wire.error_code_to_string code;
      o_cached = false;
      o_fp = stmt_fp ();
      o_disposition = "error";
      o_epoch = Middleware.epoch srv.mw;
      o_deps = [];
      o_rows_in = 0;
      o_rows_out = 0;
      o_digest =
        (if Record.enabled srv.recorder then
           Record.digest_error ~code:(Wire.error_code_to_string code) ~message
         else "");
    }
  in
  match
    (* plain queries go through the session's prepared table and the
       cache; EXPLAIN/CHECK/DDL/DML take the execute_statement path *)
    match Tkr_sql.Parser.statement req.Wire.stmt with
    | Ast.Query _ -> run_query srv j.j_sess req trace_id
    | stmt ->
        let payload, rows_out = run_statement srv stmt in
        {
          q_payload = payload;
          q_cached = false;
          q_trace = None;
          q_fp = stmt_fp ();
          q_disposition = "bypass";
          q_epoch = Middleware.epoch srv.mw;
          q_deps = [];
          q_rows_in = 0;
          q_rows_out = rows_out;
        }
  with
  | result -> reply_ok result
  | exception Tkr_sql.Parser.Error d | exception Tkr_sql.Lexer.Error d ->
      fail Wire.Parse_error (Diagnostic.to_string d)
  | exception Middleware.Rejected diags ->
      fail Wire.Check_error (Diagnostic.report_to_text diags)
  | exception Middleware.Error d ->
      fail Wire.Runtime_error (Diagnostic.to_string d)
  | exception Tkr_sql.Analyzer.Error d ->
      fail Wire.Runtime_error (Diagnostic.to_string d)
  | exception Schema.Unknown name ->
      fail Wire.Runtime_error ("unknown name " ^ name)
  | exception exn -> fail Wire.Runtime_error (Printexc.to_string exn)

(* ---- per-session ordering ---- *)

(* Enqueue [job] preserving per-session FIFO order.  The caller is the
   session's reader thread, which sees requests in arrival order, and at
   most one job per session is ever inside the admission queue: when the
   session already holds a claim (a job executing or queued), the new job
   is deferred onto the session's chain instead, to be run by the worker
   finishing the current one.  Two workers can therefore never race on
   the order of one session's requests.  The chain is bounded by the
   admission depth, so a pipelining flood gets [`Busy] backpressure like
   everyone else. *)
let enqueue srv (job : job) =
  let sid = Session.id job.j_sess in
  if Admission.draining srv.queue then `Draining
  else
    let claim =
      locked srv.order_lock @@ fun () ->
      match Hashtbl.find_opt srv.order sid with
      | Some pending ->
          if Queue.length pending >= srv.cfg.queue_depth then `Busy
          else begin
            Queue.push job pending;
            `Deferred
          end
      | None ->
          Hashtbl.replace srv.order sid (Queue.create ());
          `Claimed
    in
    match claim with
    | (`Busy | `Deferred) as r -> r
    | `Claimed -> (
        match Admission.submit srv.queue job with
        | `Accepted -> `Accepted
        | (`Busy | `Draining) as r ->
            (* the job never entered the queue: release the fresh claim
               (its chain is empty — this reader is the only submitter) *)
            locked srv.order_lock (fun () -> Hashtbl.remove srv.order sid);
            r)

(* done with one job of the session: hand back its next deferred job, or
   release the session's claim when the chain is dry *)
let session_next srv (job : job) =
  let sid = Session.id job.j_sess in
  locked srv.order_lock @@ fun () ->
  match Hashtbl.find_opt srv.order sid with
  | Some pending when not (Queue.is_empty pending) -> Some (Queue.pop pending)
  | _ ->
      Hashtbl.remove srv.order sid;
      None

(* ---- worker threads ---- *)

let run_one srv (job : job) =
  Metrics.incr srv.m_requests;
  Metrics.gauge_add srv.g_inflight 1;
  Fun.protect ~finally:(fun () -> Metrics.gauge_add srv.g_inflight (-1))
  @@ fun () ->
  let req = job.j_req in
  let sid = Session.id job.j_sess in
  let tel = srv.tel in
  let exec_start_ns = Clock.now_ns () in
  let queue_us =
    Int64.to_int (Int64.div (Int64.sub exec_start_ns job.j_enq_ns) 1000L)
  in
  (* allocation attribution: words this domain allocates while the job
     runs.  Parallel operator segments allocate on pool domains and are
     not counted — the ledger tracks the serial (worker-side) cost. *)
  let gc0 = Gc.quick_stat () in
  (if Tel.enabled tel then
     match job.j_trace with
     | Some trace_id ->
         Tel.emit tel
           (Tel.Request_start
              { session = sid; req_id = req.Wire.id; trace_id;
                stmt = req.Wire.stmt })
     | None -> ());
  let finish (o : outcome) =
    let total_us =
      Int64.to_int (Int64.div (Int64.sub (Clock.now_ns ()) job.j_enq_ns) 1000L)
    in
    let exec_us = max 0 (total_us - queue_us) in
    let gc1 = Gc.quick_stat () in
    let gc_minor_w =
      int_of_float (gc1.Gc.minor_words -. gc0.Gc.minor_words)
    in
    let gc_major_w =
      int_of_float (gc1.Gc.major_words -. gc0.Gc.major_words)
    in
    Ledger.observe srv.ledger ~fp:o.o_fp ~stmt:req.Wire.stmt
      ~ok:(o.o_status = "ok") ~disposition:o.o_disposition ~queue_us ~exec_us
      ~total_us ~rows_out:o.o_rows_out ~gc_minor_w ~gc_major_w;
    (if Record.enabled srv.recorder then
       Record.write srv.recorder
         {
           Record.e_seq = job.j_seq;
           e_session = sid;
           e_req_id = req.Wire.id;
           e_trace_id = job.j_trace;
           e_stmt = req.Wire.stmt;
           e_deadline_ms = req.Wire.deadline_ms;
           e_arrive_ms = job.j_arrive_ms;
           e_arrive_ns = job.j_enq_ns;
           e_queue_us = queue_us;
           e_exec_us = exec_us;
           e_total_us = total_us;
           e_status = o.o_status;
           e_cached = o.o_cached;
           e_disposition = o.o_disposition;
           e_fp = o.o_fp;
           e_epoch = o.o_epoch;
           e_deps = o.o_deps;
           e_rows_in = o.o_rows_in;
           e_rows_out = o.o_rows_out;
           e_gc_minor_w = gc_minor_w;
           e_gc_major_w = gc_major_w;
           e_digest = o.o_digest;
         });
    if Tel.enabled tel then begin
      (match job.j_trace with
      | Some trace_id ->
          Tel.emit tel
            (Tel.Request_finish
               { session = sid; req_id = req.Wire.id; trace_id;
                 status = o.o_status; cached = o.o_cached;
                 elapsed_us = total_us })
      | None -> ());
      if total_us >= srv.cfg.slow_ms * 1000 then
        Tel.emit tel
          (Tel.Slow_query
             { trace_id = Option.value ~default:"" job.j_trace;
               fingerprint = o.o_fp; stmt = req.Wire.stmt; queue_us;
               exec_us = total_us - queue_us; total_us;
               disposition = o.o_disposition })
    end
  in
  match req.Wire.deadline_ms with
  | Some budget_ms
    when Int64.to_int
           (Int64.div (Int64.sub exec_start_ns job.j_enq_ns) 1_000_000L)
         >= budget_ms ->
      Metrics.incr srv.m_deadline;
      let message =
        Printf.sprintf "deadline of %d ms exceeded in queue" budget_ms
      in
      send_raw job.j_conn
        (Wire.error_frame ~id:req.Wire.id ?trace_id:job.j_trace
           { Wire.code = Wire.Deadline_exceeded; message });
      let code = Wire.error_code_to_string Wire.Deadline_exceeded in
      finish
        {
          o_status = code;
          o_cached = false;
          o_fp = fingerprint req.Wire.stmt;
          o_disposition = "error";
          o_epoch = Middleware.epoch srv.mw;
          o_deps = [];
          o_rows_in = 0;
          o_rows_out = 0;
          o_digest =
            (if Record.enabled srv.recorder then
               Record.digest_error ~code ~message
             else "");
        }
  | _ -> finish (execute srv job)

let worker_loop srv () =
  (* every job handed out by the admission queue carries its session's
     claim: run it, then drain the jobs deferred behind it in FIFO order *)
  let rec run_chain job =
    run_one srv job;
    match session_next srv job with
    | Some next -> run_chain next
    | None -> ()
  in
  let rec loop () =
    match Admission.take srv.queue with
    | None -> ()  (* drained and dry: exit *)
    | Some job ->
        run_chain job;
        loop ()
  in
  loop ()

(* ---- scrape surface: STATS / METRICS / HEALTH ---- *)

(* refresh the sampled gauges; called at scrape time so an export always
   shows current levels without the hot path touching every gauge *)
let sync_gauges srv =
  Metrics.set srv.g_queue (Admission.length srv.queue);
  Metrics.set srv.g_sessions (Session.active srv.sessions);
  let cs = Cache.stats srv.cache in
  Metrics.set srv.g_cache_entries cs.Cache.entries;
  Metrics.set srv.g_cache_bytes cs.Cache.bytes;
  Metrics.set srv.g_pool (Middleware.parallelism srv.mw);
  Metrics.set srv.g_uptime (uptime_s srv);
  let i = Tkr_idx.Stats.snapshot () in
  Metrics.set srv.g_idx_built i.Tkr_idx.Stats.s_built;
  Metrics.set srv.g_idx_rebuilds i.Tkr_idx.Stats.s_rebuilds;
  Metrics.set srv.g_idx_probes i.Tkr_idx.Stats.s_probes;
  Metrics.set srv.g_idx_candidates i.Tkr_idx.Stats.s_candidates

let build_info_family srv : string =
  let e = srv.env in
  Openmetrics.gauge ~help:"build and runtime environment" "tkr_build_info"
    [
      ( [
          ("git_sha", e.Tkr_perf.Env.git_sha
                      ^ if e.Tkr_perf.Env.dirty then "+dirty" else "");
          ("ocaml_version", e.Tkr_perf.Env.ocaml_version);
          ("os_type", e.Tkr_perf.Env.os_type);
        ],
        1.0 );
    ]

(* telemetry drop accounting, exported even though the event log itself
   lives outside the metrics registry *)
let tel_family srv : string list =
  if Tel.enabled srv.tel then
    [
      Openmetrics.type_line "tkr_tel_events_dropped_total" "counter"
      ^ Openmetrics.sample "tkr_tel_events_dropped_total"
          (float_of_int (Tel.dropped srv.tel));
    ]
  else []

let metrics_text srv : string =
  sync_gauges srv;
  Openmetrics.of_metrics
    ~extra:
      ((build_info_family srv :: tel_family srv)
      @ Ledger.openmetrics srv.ledger)
    (Middleware.metrics srv.mw)

let health_json srv : Json.t =
  let draining = Atomic.get srv.stop_flag || Admission.draining srv.queue in
  Json.Obj
    [
      ("status", Json.Str (if draining then "draining" else "ready"));
      ("uptime_s", Json.Int (uptime_s srv));
      ("sessions", Json.Int (Session.active srv.sessions));
      ("queue_depth", Json.Int (Admission.length srv.queue));
      ("inflight", Json.Int (Metrics.gauge_value srv.g_inflight));
    ]

let stats_json srv : Json.t =
  sync_gauges srv;
  let q p = Metrics.histogram_quantile srv.m_latency p in
  Json.Obj
    [
      ("uptime_s", Json.Int (uptime_s srv));
      ("requests", Json.Int (Metrics.value srv.m_requests));
      ("errors", Json.Int (Metrics.value srv.m_errors));
      ("busy", Json.Int (Metrics.value srv.m_busy));
      ("deadline_exceeded", Json.Int (Metrics.value srv.m_deadline));
      ("sessions", Json.Int (Metrics.gauge_value srv.g_sessions));
      ("queue_depth", Json.Int (Metrics.gauge_value srv.g_queue));
      ("inflight", Json.Int (Metrics.gauge_value srv.g_inflight));
      ("pool_domains", Json.Int (Metrics.gauge_value srv.g_pool));
      ( "latency_us",
        Json.Obj
          [
            ("count", Json.Int (Metrics.histogram_observations srv.m_latency));
            ("p50", Json.Int (q 0.50));
            ("p95", Json.Int (q 0.95));
            ("p99", Json.Int (q 0.99));
          ] );
      ( "index",
        Json.Obj
          [
            ("enabled", Json.Bool (Middleware.index_enabled srv.mw));
            ("built", Json.Int (Metrics.gauge_value srv.g_idx_built));
            ("rebuilds", Json.Int (Metrics.gauge_value srv.g_idx_rebuilds));
            ("probes", Json.Int (Metrics.gauge_value srv.g_idx_probes));
            ( "candidates",
              Json.Int (Metrics.gauge_value srv.g_idx_candidates) );
          ] );
      ("cache", Cache.stats_json srv.cache);
      ( "slowest",
        (* derived from the resource ledger, worst single execution
           first; same shape as the pre-ledger slow-query table *)
        Json.List
          (Ledger.rows srv.ledger
          |> List.sort (fun a b ->
                 compare b.Ledger.r_max_us a.Ledger.r_max_us)
          |> List.filteri (fun i _ -> i < 5)
          |> List.map (fun (r : Ledger.row) ->
                 Json.Obj
                   [
                     ("fingerprint", Json.Str r.Ledger.r_fp);
                     ("count", Json.Int r.Ledger.r_count);
                     ("max_us", Json.Int r.Ledger.r_max_us);
                     ("total_us", Json.Int r.Ledger.r_total_us);
                     ("stmt", Json.Str r.Ledger.r_stmt);
                   ])) );
    ]

(* the scrape commands answer from the reader thread, ahead of admission:
   they stay responsive under a full queue and HEALTH keeps answering
   (as "draining") during a drain, when the queue admits nothing *)
let scrape srv (req : Wire.request) : string option =
  match String.uppercase_ascii (String.trim req.Wire.stmt) with
  | "STATS" -> Some (Json.to_string (stats_json srv))
  | "METRICS" -> Some (metrics_text srv)
  | "HEALTH" -> Some (Json.to_string (health_json srv))
  | "LEDGER" -> Some (Json.to_string (Ledger.to_json ~top:50 srv.ledger))
  | _ -> None

(* ---- connection threads ---- *)

let conn_loop srv conn sess () =
  let sid = Session.id sess in
  let finally () =
    Session.close srv.sessions sess;
    if Tel.enabled srv.tel then
      Tel.emit srv.tel (Tel.Conn_close { session = sid });
    (* deregister and prune this thread from the server's bookkeeping so
       a long-running server doesn't accumulate a Thread.t per connection
       ever accepted; the accept loop inserts the thread into
       [conn_threads] under [conns_lock] before releasing it, so the
       filter below can never run before the insertion *)
    let self = Thread.id (Thread.self ()) in
    locked srv.conns_lock (fun () ->
        Hashtbl.remove srv.conns sid;
        srv.conn_threads <-
          List.filter (fun th -> Thread.id th <> self) srv.conn_threads);
    (try Unix.close conn.fd with Unix.Unix_error _ -> ())
  in
  Fun.protect ~finally @@ fun () ->
  if Tel.enabled srv.tel then Tel.emit srv.tel (Tel.Conn_open { session = sid });
  send_raw conn (Wire.greeting_frame ~session_id:sid);
  let rec loop () =
    match Wire.read_frame conn.fd with
    | None -> ()  (* clean close *)
    | Some frame ->
        (match Wire.request_of_json (Json.of_string frame) with
        | req -> (
            match scrape srv req with
            | Some payload ->
                send_raw conn
                  (Wire.ok_frame ~id:req.Wire.id ~cached:false ~elapsed_us:0
                     ?trace_id:req.Wire.trace_id
                     (Wire.body_to_payload (Wire.Message payload)))
            | None -> (
                let j_trace =
                  match req.Wire.trace_id with
                  | Some _ as tid -> tid
                  | None ->
                      if Tel.enabled srv.tel then
                        Some
                          (Printf.sprintf "t%d-%d" sid
                             (Atomic.fetch_and_add srv.trace_seq 1))
                      else None
                in
                let job =
                  { j_conn = conn; j_sess = sess; j_req = req;
                    j_enq_ns = Clock.now_ns ();
                    j_seq = Atomic.fetch_and_add srv.arrive_seq 1;
                    j_arrive_ms =
                      (if Record.enabled srv.recorder then
                         int_of_float (Unix.gettimeofday () *. 1000.)
                       else 0);
                    j_trace }
                in
                match enqueue srv job with
                | `Accepted | `Deferred -> ()
                | `Busy ->
                    Metrics.incr srv.m_busy;
                    if Tel.enabled srv.tel then
                      Tel.emit srv.tel
                        (Tel.Admission_reject { session = sid; reason = "busy" });
                    send_error srv conn ~id:req.Wire.id
                      ?trace_id:req.Wire.trace_id Wire.Server_busy
                      "admission queue full, retry later"
                | `Draining ->
                    if Tel.enabled srv.tel then
                      Tel.emit srv.tel
                        (Tel.Admission_reject
                           { session = sid; reason = "draining" });
                    send_error srv conn ~id:req.Wire.id
                      ?trace_id:req.Wire.trace_id Wire.Server_shutdown
                      "server is draining"))
        | exception (Wire.Protocol_error msg | Json.Parse_error msg) ->
            send_error srv conn ~id:0 Wire.Protocol_violation msg);
        loop ()
  in
  try loop () with
  | Wire.Protocol_error _ -> ()  (* torn frame: drop the connection *)
  | Unix.Unix_error _ -> ()

(* ---- accept loop ---- *)

let accept_loop srv () =
  (* select with a timeout so the loop notices [stop] promptly without a
     wakeup pipe; the listen socket stays blocking for the accept itself *)
  let rec loop () =
    if not (Atomic.get srv.stop_flag) then begin
      (match Unix.select [ srv.listen_fd ] [] [] 0.1 with
      | [ _ ], _, _ when not (Atomic.get srv.stop_flag) -> (
          match Unix.accept ~cloexec:true srv.listen_fd with
          | exception Unix.Unix_error _ -> ()
          | fd, _peer -> (
              (try Unix.setsockopt fd Unix.TCP_NODELAY true
               with Unix.Unix_error _ -> ());
              let conn = { fd; wlock = Mutex.create () } in
              match Session.open_session srv.sessions with
              | None ->
                  if Tel.enabled srv.tel then
                    Tel.emit srv.tel
                      (Tel.Admission_reject
                         { session = 0; reason = "session_limit" });
                  send_raw conn
                    (Wire.error_frame ~id:0
                       {
                         Wire.code = Wire.Session_limit;
                         message =
                           Printf.sprintf "session limit of %d reached"
                             srv.cfg.max_sessions;
                       });
                  (try Unix.close fd with Unix.Unix_error _ -> ())
              | Some sess ->
                  locked srv.conns_lock (fun () ->
                      Hashtbl.replace srv.conns (Session.id sess) conn;
                      srv.conn_threads <-
                        Thread.create (conn_loop srv conn sess) ()
                        :: srv.conn_threads)))
      | _ -> ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | exception Unix.Unix_error _ ->
          (* EBADF in a stop race, EMFILE pressure, ...: the accept loop
             must survive — back off briefly (a persistent error would
             otherwise spin hot) and re-check [stop_flag] *)
          Thread.delay 0.05);
      loop ()
    end
  in
  loop ()

(* ---- lifecycle ---- *)

let start ?(config = default_config) ?(tel = Tel.disabled)
    ?(recorder = Record.disabled) mw =
  let listen_fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
     Unix.bind listen_fd
       (Unix.ADDR_INET (Unix.inet_addr_of_string config.host, config.port));
     Unix.listen listen_fd 64
   with e ->
     (try Unix.close listen_fd with Unix.Unix_error _ -> ());
     raise e);
  let bound_port =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> config.port
  in
  let reg = Middleware.metrics mw in
  let srv =
    {
      cfg = config;
      mw;
      cache = Cache.create ~max_bytes:(config.cache_mb * 1024 * 1024);
      sessions = Session.manager ~max_sessions:config.max_sessions;
      queue = Admission.create ~depth:config.queue_depth;
      listen_fd;
      bound_port;
      stop_flag = Atomic.make false;
      conns = Hashtbl.create 64;
      conns_lock = Mutex.create ();
      order = Hashtbl.create 64;
      order_lock = Mutex.create ();
      accept_thread = None;
      worker_threads = [];
      conn_threads = [];
      tel;
      trace_seq = Atomic.make 1;
      start_ns = Clock.now_ns ();
      env = Tkr_perf.Env.capture ();
      recorder;
      ledger = Ledger.create ();
      arrive_seq = Atomic.make 0;
      m_requests = Metrics.counter reg "serve_requests_total";
      m_busy = Metrics.counter reg "serve_busy_total";
      m_deadline = Metrics.counter reg "serve_deadline_exceeded_total";
      m_errors = Metrics.counter reg "serve_errors_total";
      m_cache_hits = Metrics.counter reg "serve_cache_hits_total";
      m_cache_misses = Metrics.counter reg "serve_cache_misses_total";
      m_cache_evictions = Metrics.counter reg "serve_cache_evictions_total";
      m_latency = Metrics.histogram reg "serve_latency_us";
      g_queue = Metrics.gauge reg "serve_queue_depth";
      g_inflight = Metrics.gauge reg "serve_inflight_requests";
      g_sessions = Metrics.gauge reg "serve_sessions";
      g_cache_entries = Metrics.gauge reg "serve_cache_entries";
      g_cache_bytes = Metrics.gauge reg "serve_cache_bytes";
      g_pool = Metrics.gauge reg "serve_pool_domains";
      g_uptime = Metrics.gauge reg "uptime_seconds";
      g_idx_built = Metrics.gauge reg "tkr_idx_built";
      g_idx_rebuilds = Metrics.gauge reg "tkr_idx_rebuilds";
      g_idx_probes = Metrics.gauge reg "tkr_idx_probes";
      g_idx_candidates = Metrics.gauge reg "tkr_idx_candidates";
    }
  in
  if Tel.enabled tel then
    Middleware.set_epoch_hook mw
      (Some (fun epoch -> Tel.emit tel (Tel.Epoch_bump { epoch })));
  srv.worker_threads <-
    List.init (max 1 config.workers) (fun _ -> Thread.create (worker_loop srv) ());
  srv.accept_thread <- Some (Thread.create (accept_loop srv) ());
  srv

let stop ?(reason = "stop") srv =
  if Atomic.compare_and_set srv.stop_flag false true then begin
    if Tel.enabled srv.tel then Tel.emit srv.tel (Tel.Drain { reason });
    (* 1. stop accepting connections *)
    (match srv.accept_thread with Some th -> Thread.join th | None -> ());
    (try Unix.close srv.listen_fd with Unix.Unix_error _ -> ());
    (* 2. drain: no new requests; workers finish everything accepted *)
    Admission.drain srv.queue;
    List.iter Thread.join srv.worker_threads;
    (* 3. wake blocked readers (EOF) and join connection threads *)
    let conn_fds =
      locked srv.conns_lock (fun () ->
          Hashtbl.fold (fun _ c acc -> c.fd :: acc) srv.conns [])
    in
    List.iter
      (fun fd ->
        try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
      conn_fds;
    let threads = locked srv.conns_lock (fun () -> srv.conn_threads) in
    List.iter Thread.join threads;
    (* the middleware outlives the server: detach the epoch observer so
       later DDL doesn't write into a log the caller may close *)
    if Tel.enabled srv.tel then Middleware.set_epoch_hook srv.mw None
  end
