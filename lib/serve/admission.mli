(** Admission control: a bounded FIFO work queue with backpressure.

    Submissions past the high-water mark are rejected with [`Busy] (the
    server answers [SERVER_BUSY]) instead of queueing unboundedly.  On
    {!drain} the queue stops admitting — already-queued work is still
    handed out, so workers finish what was accepted, and blocked takers
    wake with [None] once the queue runs dry.  That is the server's
    graceful-shutdown contract. *)

type 'a t

val create : depth:int -> 'a t
(** [depth] is the high-water mark ([>= 1] enforced). *)

val submit : 'a t -> 'a -> [ `Accepted | `Busy | `Draining ]

val take : 'a t -> 'a option
(** Block until work is available ([Some job]) or the queue is draining
    and empty ([None], the worker's signal to exit). *)

val drain : 'a t -> unit
(** Stop admitting; wake all blocked takers.  Idempotent. *)

val draining : 'a t -> bool
val length : 'a t -> int
