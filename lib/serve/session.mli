(** Per-connection sessions and the session manager.

    A session holds the connection's prepared-statement table: statements
    are prepared once per (session, statement text) and re-executed on
    repetition, so clients replaying a workload skip the parse → analyze
    → rewrite → optimize pipeline after the first round.  Entries are
    validated against {!Middleware.epoch}: a plan bakes catalog state of
    prepare time (snapshot time bounds, schema arities), so after any
    DDL/DML or settings change the entry is stale and is transparently
    re-prepared on next use.  The manager enforces the server's
    [max_sessions] admission limit.

    Both are mutex-guarded and safe for concurrent callers. *)

module Middleware = Tkr_middleware.Middleware

type session

type manager

val manager : max_sessions:int -> manager

val open_session : manager -> session option
(** [None] when the manager is at [max_sessions]. *)

val close : manager -> session -> unit
(** Idempotent. *)

val id : session -> int
(** Unique for the manager's lifetime, starting at 1. *)

val active : manager -> int

val prepared : session -> Middleware.t -> string -> Middleware.prepared
(** The session's prepared statement for [stmt], preparing (and caching)
    it on first sight and re-preparing when the cached entry's
    {!Middleware.epoch} is stale (the catalog or settings changed since).
    Call under {!Middleware.read_locked} when executing the returned plan,
    so no mutation can intervene between validation and execution.
    Raises whatever {!Middleware.prepare} raises; failures are not
    cached. *)

val prepared_count : session -> int
