(** Per-connection sessions and the session manager.

    A session holds the connection's prepared-statement table: statements
    are prepared once per (session, statement text) and re-executed on
    repetition, so clients replaying a workload skip the parse → analyze
    → rewrite → optimize pipeline after the first round.  The manager
    enforces the server's [max_sessions] admission limit.

    Both are mutex-guarded and safe for concurrent callers. *)

module Middleware = Tkr_middleware.Middleware

type session

type manager

val manager : max_sessions:int -> manager

val open_session : manager -> session option
(** [None] when the manager is at [max_sessions]. *)

val close : manager -> session -> unit
(** Idempotent. *)

val id : session -> int
(** Unique for the manager's lifetime, starting at 1. *)

val active : manager -> int

val prepared : session -> Middleware.t -> string -> Middleware.prepared
(** The session's prepared statement for [stmt], preparing (and caching)
    it on first sight.  Raises whatever {!Middleware.prepare} raises;
    failures are not cached. *)

val prepared_count : session -> int
