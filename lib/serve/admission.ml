type 'a t = {
  depth : int;
  q : 'a Queue.t;
  lock : Mutex.t;
  nonempty : Condition.t;
  mutable draining : bool;
}

let create ~depth =
  {
    depth = max 1 depth;
    q = Queue.create ();
    lock = Mutex.create ();
    nonempty = Condition.create ();
    draining = false;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let submit t job =
  locked t @@ fun () ->
  if t.draining then `Draining
  else if Queue.length t.q >= t.depth then `Busy
  else begin
    Queue.push job t.q;
    Condition.signal t.nonempty;
    `Accepted
  end

let take t =
  locked t @@ fun () ->
  while Queue.is_empty t.q && not t.draining do
    Condition.wait t.nonempty t.lock
  done;
  (* drain hands out what was already accepted before reporting dry *)
  Queue.take_opt t.q

let drain t =
  locked t @@ fun () ->
  t.draining <- true;
  Condition.broadcast t.nonempty

let draining t = locked t (fun () -> t.draining)
let length t = locked t (fun () -> Queue.length t.q)
