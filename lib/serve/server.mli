(** The Tkr_serve TCP query server.

    One accept loop, one reader thread per connection, a fixed pool of
    worker threads draining the {!Admission} queue.  Each connection is a
    {!Session} (prepared statements cached per statement text and
    revalidated against {!Tkr_middleware.Middleware.epoch}, so DDL/DML
    transparently re-prepares); queries execute on the shared,
    thread-safe {!Tkr_middleware.Middleware} — the pool of domains inside
    the middleware provides CPU parallelism, the worker threads provide
    request concurrency and IO overlap.

    Requests of one session execute one at a time, in arrival order: at
    most one job per session enters the admission queue, and requests
    arriving while it executes are chained behind it (the chain is
    bounded by [queue_depth]; past that the session gets [SERVER_BUSY]).
    A client that pipelines [INSERT ...] then [SELECT ...] on one
    connection therefore observes program order, and responses come back
    in request order.  Concurrency comes from having many sessions.

    Query results flow through the snapshot-aware {!Cache}: an entry is
    keyed on the normalized final plan and guarded by the
    [(table, version)] pairs it reads, all observed under one
    {!Tkr_middleware.Middleware.read_locked} bracket, so a hit replays
    bytes that are provably equal to a fresh evaluation.

    Backpressure and shutdown are typed wire errors: [SERVER_BUSY] past
    the queue's high-water mark, [DEADLINE_EXCEEDED] for requests still
    queued past their budget, [SERVER_SHUTDOWN] once draining, and
    [SESSION_LIMIT] for connections beyond [max_sessions].  {!stop}
    drains gracefully: accepted requests finish, then threads join.

    {2 Telemetry}

    A server started with a live {!Tkr_tel.Tel.t} logs typed JSONL
    events — connection open/close, request start/finish, cache
    hit/miss/evict, dependency invalidations, admission rejects, epoch
    bumps, drains, slow queries — each request line stamped with its
    trace id: the client's [trace_id] if one came on the wire, else a
    server-generated one, echoed back on the response.  With telemetry
    off and no client trace id, responses are byte-identical to an
    uninstrumented server.

    Four statements are answered by the reader thread itself, ahead of
    admission (so they stay responsive under a full queue and during a
    drain): [STATS] (a JSON summary: counters, latency quantiles, cache,
    slowest plan fingerprints), [METRICS] (the OpenMetrics exposition of
    the middleware registry — engine and server counters, live gauges,
    build info, [tkr_ledger_*] families, telemetry drop counter),
    [HEALTH] ([ready]/[draining]) and [LEDGER] (the per-plan-fingerprint
    resource ledger: see {!Tkr_rec.Ledger.to_json}).

    {2 Flight recording}

    A server started with a live {!Tkr_rec.Record.t} appends one
    versioned JSONL entry per finished request — canonical statement,
    session, arrival order, the [(table, version)] vector and catalog
    epoch observed at execution, cache disposition, queue/exec split, GC
    word deltas, rows in/out, and an MD5 digest of the exact response
    payload bytes.  Because the dependency vector is read under the same
    lock bracket the cache uses, a recording pins exactly the state a
    deterministic replay must reproduce.  Recording off (the default) is
    a physical-equality check per request. *)

module Middleware = Tkr_middleware.Middleware
module Tel = Tkr_tel.Tel
module Record = Tkr_rec.Record
module Ledger = Tkr_rec.Ledger

type config = {
  host : string;  (** bind address, default ["127.0.0.1"] *)
  port : int;  (** 0 picks an ephemeral port (see {!port}) *)
  max_sessions : int;
  queue_depth : int;  (** admission high-water mark *)
  cache_mb : int;  (** result-cache byte budget; 0 disables the cache *)
  workers : int;  (** worker threads draining the admission queue *)
  slow_ms : int;
      (** slow-query threshold: requests whose total latency reaches this
          emit a [slow_query] event (fingerprint, phase split, cache
          disposition) when telemetry is on *)
}

val default_config : config
(** 127.0.0.1:7643, 64 sessions, queue 128, 64 MiB cache, 8 workers,
    500 ms slow threshold. *)

type t

val start :
  ?config:config -> ?tel:Tel.t -> ?recorder:Record.t -> Middleware.t -> t
(** Bind, listen and spawn the accept loop and workers.  [tel] (default
    {!Tkr_tel.Tel.disabled}) receives the event log; [recorder] (default
    {!Tkr_rec.Record.disabled}) receives flight-recording entries.  The
    caller owns both and closes them after {!stop}.
    @raise Unix.Unix_error when the address cannot be bound. *)

val port : t -> int
(** The actually bound port (useful with [port = 0]). *)

val config : t -> config
val cache_stats : t -> Cache.stats
val stopping : t -> bool
val telemetry : t -> Tel.t
val recorder : t -> Record.t

val ledger : t -> Ledger.t
(** The live resource ledger (always on); [LEDGER] serves its
    {!Tkr_rec.Ledger.to_json}. *)

val stats_json : t -> Tkr_obs.Json.t
(** The [STATS] payload: uptime, request/error counters, live gauges,
    latency quantiles (p50/p95/p99 of [serve_latency_us]), cache stats
    and the top slow-query fingerprints. *)

val metrics_text : t -> string
(** The [METRICS] payload: the OpenMetrics exposition of the middleware
    registry with the live gauges freshly sampled, plus the
    [tkr_build_info] family (git SHA, OCaml version), the
    [tkr_tel_events_dropped_total] counter (when telemetry is on) and
    the [tkr_ledger_*] per-fingerprint families. *)

val health_json : t -> Tkr_obs.Json.t
(** The [HEALTH] payload: [{"status": "ready" | "draining", ...}]. *)

val stop : ?reason:string -> t -> unit
(** Graceful drain: stop accepting connections and requests, let workers
    finish every accepted request, wake and join all threads.  [reason]
    (default ["stop"]) tags the drain event in the log — the CLI passes
    ["sigterm"].  Idempotent and safe to call from a signal-triggered
    context. *)
