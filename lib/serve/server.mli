(** The Tkr_serve TCP query server.

    One accept loop, one reader thread per connection, a fixed pool of
    worker threads draining the {!Admission} queue.  Each connection is a
    {!Session} (prepared statements cached per statement text and
    revalidated against {!Tkr_middleware.Middleware.epoch}, so DDL/DML
    transparently re-prepares); queries execute on the shared,
    thread-safe {!Tkr_middleware.Middleware} — the pool of domains inside
    the middleware provides CPU parallelism, the worker threads provide
    request concurrency and IO overlap.

    Requests of one session execute one at a time, in arrival order: at
    most one job per session enters the admission queue, and requests
    arriving while it executes are chained behind it (the chain is
    bounded by [queue_depth]; past that the session gets [SERVER_BUSY]).
    A client that pipelines [INSERT ...] then [SELECT ...] on one
    connection therefore observes program order, and responses come back
    in request order.  Concurrency comes from having many sessions.

    Query results flow through the snapshot-aware {!Cache}: an entry is
    keyed on the normalized final plan and guarded by the
    [(table, version)] pairs it reads, all observed under one
    {!Tkr_middleware.Middleware.read_locked} bracket, so a hit replays
    bytes that are provably equal to a fresh evaluation.

    Backpressure and shutdown are typed wire errors: [SERVER_BUSY] past
    the queue's high-water mark, [DEADLINE_EXCEEDED] for requests still
    queued past their budget, [SERVER_SHUTDOWN] once draining, and
    [SESSION_LIMIT] for connections beyond [max_sessions].  {!stop}
    drains gracefully: accepted requests finish, then threads join. *)

module Middleware = Tkr_middleware.Middleware

type config = {
  host : string;  (** bind address, default ["127.0.0.1"] *)
  port : int;  (** 0 picks an ephemeral port (see {!port}) *)
  max_sessions : int;
  queue_depth : int;  (** admission high-water mark *)
  cache_mb : int;  (** result-cache byte budget; 0 disables the cache *)
  workers : int;  (** worker threads draining the admission queue *)
}

val default_config : config
(** 127.0.0.1:7643, 64 sessions, queue 128, 64 MiB cache, 8 workers. *)

type t

val start : ?config:config -> Middleware.t -> t
(** Bind, listen and spawn the accept loop and workers.
    @raise Unix.Unix_error when the address cannot be bound. *)

val port : t -> int
(** The actually bound port (useful with [port = 0]). *)

val config : t -> config
val cache_stats : t -> Cache.stats
val stopping : t -> bool

val stop : t -> unit
(** Graceful drain: stop accepting connections and requests, let workers
    finish every accepted request, wake and join all threads.  Idempotent
    and safe to call from a signal-triggered context. *)
