module Json = Tkr_obs.Json

exception Server_error of Wire.error

type t = {
  fd : Unix.file_descr;
  sid : int;
  lock : Mutex.t;  (* one request in flight at a time *)
  mutable next_id : int;
  mutable closed : bool;
}

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let connect ?(host = "127.0.0.1") ~port () =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
     Unix.setsockopt fd Unix.TCP_NODELAY true
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  match Wire.read_frame fd with
  | None ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise (Wire.Protocol_error "server closed without a greeting")
  | Some frame -> (
      match Wire.greeting_of_string frame with
      | Ok sid ->
          { fd; sid; lock = Mutex.create (); next_id = 1; closed = false }
      | Error e ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          raise (Server_error e))

let session_id t = t.sid

let request_unlocked t (req : Wire.request) : Wire.response =
  if t.closed then raise (Wire.Protocol_error "client is closed");
  Wire.write_frame t.fd (Json.to_string (Wire.request_to_json req));
  match Wire.read_frame t.fd with
  | None -> raise (Wire.Protocol_error "server closed mid-request")
  | Some frame ->
      let rsp = Wire.response_of_string frame in
      (* one request in flight, so the next response must answer it —
         anything else means the stream is desynchronized *)
      if rsp.Wire.rsp_id <> req.Wire.id then
        raise
          (Wire.Protocol_error
             (Printf.sprintf "response id %d does not match request id %d"
                rsp.Wire.rsp_id req.Wire.id));
      rsp

let request t req = locked t (fun () -> request_unlocked t req)

let run ?deadline_ms ?trace ?trace_id t stmt =
  locked t @@ fun () ->
  let id = t.next_id in
  t.next_id <- id + 1;
  request_unlocked t (Wire.request ~id ?deadline_ms ?trace ?trace_id stmt)

let run_exn ?deadline_ms ?trace ?trace_id t stmt =
  let rsp = run ?deadline_ms ?trace ?trace_id t stmt in
  match rsp.Wire.body with
  | Ok _ -> rsp
  | Error e -> raise (Server_error e)

let close t =
  locked t @@ fun () ->
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let with_client ?host ~port f =
  let t = connect ?host ~port () in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)
