(** Growable int arrays: the selection-vector and index buffers of the
    vectorized operators (amortized O(1) push, no boxing). *)

type t = { mutable a : int array; mutable n : int }

let create ?(cap = 16) () = { a = Array.make (max cap 1) 0; n = 0 }

let push b x =
  if b.n = Array.length b.a then begin
    let a' = Array.make (2 * b.n) 0 in
    Array.blit b.a 0 a' 0 b.n;
    b.a <- a'
  end;
  b.a.(b.n) <- x;
  b.n <- b.n + 1

let length b = b.n
let get b i = b.a.(i)
let to_array b = Array.sub b.a 0 b.n
