(** Closure-free sorting for unboxed int data.

    [Array.sort Int.compare] pays an indirect call per comparison, which
    dominates the temporal sweeps' endpoint sorting.  These bottom-up
    merge sorts compare machine ints inline; [perm]/[perm_prefix] return a
    {e stable} permutation (ties keep their original order), which is what
    the sweeps rely on to reproduce the row oracle's first-appearance
    ordering. *)

(* merge src[lo,mid) and src[mid,hi) into dst, by value *)
let merge_vals (src : int array) (dst : int array) lo mid hi =
  let i = ref lo and j = ref mid and k = ref lo in
  while !i < mid && !j < hi do
    if src.(!i) <= src.(!j) then begin
      dst.(!k) <- src.(!i);
      incr i
    end
    else begin
      dst.(!k) <- src.(!j);
      incr j
    end;
    incr k
  done;
  while !i < mid do
    dst.(!k) <- src.(!i);
    incr i;
    incr k
  done;
  while !j < hi do
    dst.(!k) <- src.(!j);
    incr j;
    incr k
  done

(** In-place ascending sort of [a]. *)
let sort (a : int array) : unit =
  let n = Array.length a in
  if n > 1 then begin
    let b = Array.make n 0 in
    let src = ref a and dst = ref b in
    let width = ref 1 in
    while !width < n do
      let lo = ref 0 in
      while !lo < n do
        let mid = min (!lo + !width) n in
        let hi = min (!lo + (2 * !width)) n in
        merge_vals !src !dst !lo mid hi;
        lo := hi
      done;
      let t = !src in
      src := !dst;
      dst := t;
      width := !width * 2
    done;
    if !src != a then Array.blit !src 0 a 0 n
  end

(* merge src[lo,mid) and src[mid,hi) into dst, by keys.(index); [<=]
   keeps the left run's ties first, which makes the whole sort stable *)
let merge_perm (keys : int array) (src : int array) (dst : int array) lo mid hi
    =
  let i = ref lo and j = ref mid and k = ref lo in
  while !i < mid && !j < hi do
    if keys.(src.(!i)) <= keys.(src.(!j)) then begin
      dst.(!k) <- src.(!i);
      incr i
    end
    else begin
      dst.(!k) <- src.(!j);
      incr j
    end;
    incr k
  done;
  while !i < mid do
    dst.(!k) <- src.(!i);
    incr i;
    incr k
  done;
  while !j < hi do
    dst.(!k) <- src.(!j);
    incr j;
    incr k
  done

(** [perm_prefix keys n]: the indices [0..n-1] stably sorted ascending by
    [keys.(i)] (only the first [n] cells of [keys] are consulted). *)
let perm_prefix (keys : int array) (n : int) : int array =
  let a = Array.init n Fun.id in
  if n > 1 then begin
    let b = Array.make n 0 in
    let src = ref a and dst = ref b in
    let width = ref 1 in
    while !width < n do
      let lo = ref 0 in
      while !lo < n do
        let mid = min (!lo + !width) n in
        let hi = min (!lo + (2 * !width)) n in
        merge_perm keys !src !dst !lo mid hi;
        lo := hi
      done;
      let t = !src in
      src := !dst;
      dst := t;
      width := !width * 2
    done;
    !src
  end
  else a

(** [perm keys]: {!perm_prefix} over all of [keys]. *)
let perm (keys : int array) : int array = perm_prefix keys (Array.length keys)
