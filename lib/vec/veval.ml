(** Vectorized scalar-expression evaluation over {!Batch.t}.

    [eval b e] produces a dense column aligned with [b]'s {e logical} rows
    (the selection is applied at the [Col] leaves).  The common arithmetic
    and comparison forms run column-at-a-time over the unboxed
    representations; everything else degrades gracefully — first to a
    generic boxed column loop ({!Value} semantics applied cell-wise), and
    for the row-oriented constructors ([LIKE], [IN], [CASE],
    [GREATEST]/[LEAST]) to evaluating {!Expr.eval} on materialized rows —
    so every path reproduces the row oracle's three-valued logic,
    int/float coercions, NULL-on-division-by-zero and error behaviour
    exactly. *)

open Tkr_relation

let cmp_result (op : Expr.cmp) (c : int) : bool =
  match op with
  | Expr.Eq -> c = 0
  | Expr.Ne -> c <> 0
  | Expr.Lt -> c < 0
  | Expr.Le -> c <= 0
  | Expr.Gt -> c > 0
  | Expr.Ge -> c >= 0

(* tri-state truth of a cell under SQL logic: 1 TRUE, 0 FALSE, -1 UNKNOWN
   (NULL or non-boolean, which the connectives treat alike) *)
let truth (c : Batch.col) (i : int) : int =
  if Batch.is_null_at c i then -1
  else
    match c.data with
    | Batch.Bools a -> if a.(i) then 1 else 0
    | Batch.Boxed a -> (
        match a.(i) with
        | Value.Bool true -> 1
        | Value.Bool false -> 0
        | _ -> -1)
    | _ -> -1

let null_at (c : Batch.col) (i : int) : bool =
  match c.nulls with Some m -> m.(i) | None -> false

(* the union of two validity masks; shares an operand's mask when the
   other is absent (masks are immutable once built) *)
let union_masks n (a : bool array option) (b : bool array option) :
    bool array option =
  match (a, b) with
  | None, None -> None
  | Some m, None | None, Some m -> Some m
  | Some x, Some y -> Some (Array.init n (fun i -> x.(i) || y.(i)))

let rec eval (b : Batch.t) (e : Expr.t) : Batch.col =
  let n = Batch.length b in
  match e with
  | Expr.Col i -> (
      match b.sel with
      | None -> b.cols.(i)
      | Some s -> Batch.gather_col b.cols.(i) s)
  | Expr.Const v -> Batch.const_col v n
  | Expr.Binop (op, x, y) -> binop n op (eval b x) (eval b y)
  | Expr.Neg x -> neg n (eval b x)
  | Expr.Cmp (op, x, y) -> cmp n op (eval b x) (eval b y)
  | Expr.And (x, y) ->
      (* both sides evaluate, like the row oracle's non-short-circuit AND *)
      let ca = eval b x and cb = eval b y in
      connective n ca cb (fun ta tb ->
          if ta = 0 || tb = 0 then 0 else if ta = 1 && tb = 1 then 1 else -1)
  | Expr.Or (x, y) ->
      let ca = eval b x and cb = eval b y in
      connective n ca cb (fun ta tb ->
          if ta = 1 || tb = 1 then 1 else if ta = 0 && tb = 0 then 0 else -1)
  | Expr.Not x ->
      let c = eval b x in
      let out = Array.make n false and mask = Array.make n false in
      for i = 0 to n - 1 do
        match truth c i with
        | 1 -> ()
        | 0 -> out.(i) <- true
        | _ -> mask.(i) <- true
      done;
      { Batch.data = Batch.Bools out; nulls = Some mask }
  | Expr.Is_null x ->
      let c = eval b x in
      {
        Batch.data = Batch.Bools (Array.init n (fun i -> Batch.is_null_at c i));
        nulls = None;
      }
  | Expr.Greatest (x, y) | Expr.Least (x, y) -> (
      (* the temporal join recombines periods with greatest/least over the
         int endpoint columns on every output row, so this pair gets a
         typed path; [Expr.eval] picks the left operand on ties ([c >= 0]
         resp. [c <= 0]), which over ints is plain max/min *)
      let ca = eval b x and cb = eval b y in
      match (ca.Batch.data, cb.Batch.data) with
      | Batch.Ints a, Batch.Ints c ->
          let greatest =
            match e with Expr.Greatest _ -> true | _ -> false
          in
          let pick =
            if greatest then fun i -> if a.(i) >= c.(i) then a.(i) else c.(i)
            else fun i -> if a.(i) <= c.(i) then a.(i) else c.(i)
          in
          {
            Batch.data = Batch.Ints (Array.init n pick);
            nulls = union_masks n ca.nulls cb.nulls;
          }
      | _ -> rowwise b e)
  | Expr.Like _ | Expr.In_list _ | Expr.Case _ -> rowwise b e

(* row-at-a-time fallback for the rare constructors: materialize each
   logical row and defer to the oracle's own evaluator *)
and rowwise (b : Batch.t) (e : Expr.t) : Batch.col =
  let n = Batch.length b in
  {
    Batch.data =
      Batch.Boxed
        (Array.init n (fun li ->
             Expr.eval (Batch.tuple_at b (Batch.phys b li)) e));
    nulls = None;
  }

and connective n (ca : Batch.col) (cb : Batch.col) (table : int -> int -> int)
    : Batch.col =
  let out = Array.make n false and mask = Array.make n false in
  for i = 0 to n - 1 do
    match table (truth ca i) (truth cb i) with
    | 1 -> out.(i) <- true
    | 0 -> ()
    | _ -> mask.(i) <- true
  done;
  { Batch.data = Batch.Bools out; nulls = Some mask }

and binop n (op : Expr.binop) (ca : Batch.col) (cb : Batch.col) : Batch.col =
  match (ca.Batch.data, cb.Batch.data) with
  | Batch.Ints a, Batch.Ints b -> (
      let nulls = union_masks n ca.nulls cb.nulls in
      let map2 f = Array.init n (fun i -> f a.(i) b.(i)) in
      match op with
      | Expr.Add -> { Batch.data = Batch.Ints (map2 ( + )); nulls }
      | Expr.Sub -> { Batch.data = Batch.Ints (map2 ( - )); nulls }
      | Expr.Mul -> { Batch.data = Batch.Ints (map2 ( * )); nulls }
      | Expr.Div | Expr.Mod ->
          (* division by zero yields NULL, like [Value.div] *)
          let f = if op = Expr.Div then ( / ) else ( mod ) in
          let out = Array.make n 0 in
          let mask = Array.make n false in
          for i = 0 to n - 1 do
            if null_at ca i || null_at cb i then mask.(i) <- true
            else if b.(i) = 0 then mask.(i) <- true
            else out.(i) <- f a.(i) b.(i)
          done;
          { Batch.data = Batch.Ints out; nulls = Some mask })
  | (Batch.Ints _ | Batch.Floats _), (Batch.Ints _ | Batch.Floats _) ->
      let getf (c : Batch.col) : int -> float =
        match c.Batch.data with
        | Batch.Floats a -> fun i -> a.(i)
        | Batch.Ints a -> fun i -> float_of_int a.(i)
        | _ -> assert false
      in
      let fa = getf ca and fb = getf cb in
      let ff =
        match op with
        | Expr.Add -> ( +. )
        | Expr.Sub -> ( -. )
        | Expr.Mul -> ( *. )
        | Expr.Div -> ( /. )
        | Expr.Mod -> Float.rem
      in
      let divides = match op with Expr.Div | Expr.Mod -> true | _ -> false in
      let out = Array.make n 0.0 in
      let mask = Array.make n false in
      let masked = ref false in
      for i = 0 to n - 1 do
        if null_at ca i || null_at cb i then begin
          mask.(i) <- true;
          masked := true
        end
        else if divides && fb i = 0.0 then begin
          mask.(i) <- true;
          masked := true
        end
        else out.(i) <- ff (fa i) (fb i)
      done;
      {
        Batch.data = Batch.Floats out;
        nulls = (if !masked then Some mask else None);
      }
  | _ ->
      let vop =
        match op with
        | Expr.Add -> Value.add
        | Expr.Sub -> Value.sub
        | Expr.Mul -> Value.mul
        | Expr.Div -> Value.div
        | Expr.Mod -> Value.modulo
      in
      {
        Batch.data =
          Batch.Boxed
            (Array.init n (fun i -> vop (Batch.value ca i) (Batch.value cb i)));
        nulls = None;
      }

and neg n (c : Batch.col) : Batch.col =
  match c.Batch.data with
  | Batch.Ints a ->
      { Batch.data = Batch.Ints (Array.init n (fun i -> -a.(i))); nulls = c.nulls }
  | Batch.Floats a ->
      {
        Batch.data = Batch.Floats (Array.init n (fun i -> -.a.(i)));
        nulls = c.nulls;
      }
  | _ ->
      {
        Batch.data =
          Batch.Boxed (Array.init n (fun i -> Value.neg (Batch.value c i)));
        nulls = None;
      }

and cmp n (op : Expr.cmp) (ca : Batch.col) (cb : Batch.col) : Batch.col =
  let typed (compare_at : int -> int) : Batch.col =
    let out = Array.make n false and mask = Array.make n false in
    let masked = ref false in
    for i = 0 to n - 1 do
      if null_at ca i || null_at cb i then begin
        mask.(i) <- true;
        masked := true
      end
      else out.(i) <- cmp_result op (compare_at i)
    done;
    { Batch.data = Batch.Bools out; nulls = (if !masked then Some mask else None) }
  in
  match (ca.Batch.data, cb.Batch.data) with
  | Batch.Ints a, Batch.Ints b -> typed (fun i -> Int.compare a.(i) b.(i))
  | (Batch.Ints _ | Batch.Floats _), (Batch.Ints _ | Batch.Floats _) ->
      let getf (c : Batch.col) : int -> float =
        match c.Batch.data with
        | Batch.Floats a -> fun i -> a.(i)
        | Batch.Ints a -> fun i -> float_of_int a.(i)
        | _ -> assert false
      in
      let fa = getf ca and fb = getf cb in
      typed (fun i -> Float.compare (fa i) (fb i))
  | Batch.Strs a, Batch.Strs b -> typed (fun i -> String.compare a.(i) b.(i))
  | Batch.Bools a, Batch.Bools b -> typed (fun i -> Bool.compare a.(i) b.(i))
  | _ ->
      (* generic: the oracle's [sql_compare], including its exception on
         incompatible non-null types *)
      let out = Array.make n false and mask = Array.make n false in
      for i = 0 to n - 1 do
        match Value.sql_compare (Batch.value ca i) (Batch.value cb i) with
        | None -> mask.(i) <- true
        | Some c -> out.(i) <- cmp_result op c
      done;
      { Batch.data = Batch.Bools out; nulls = Some mask }

(** [filter b pred]: the physical rows of [b]'s selection on which [pred]
    holds (evaluates to TRUE), in logical order.  The predicate is split
    into conjuncts and applied with predicate fusion: each conjunct only
    evaluates on the survivors of the previous ones. *)
let filter (b : Batch.t) (pred : Expr.t) : int array =
  let conjs = Expr.conjuncts pred in
  (* [None] = every physical row in order; keeping the dense case symbolic
     lets the first conjunct evaluate straight off the columns instead of
     gathering them through an identity selection *)
  let cur = ref b.sel in
  List.iter
    (fun conj ->
      let n = match !cur with Some s -> Array.length s | None -> b.nrows in
      if n > 0 then begin
        let view =
          match !cur with None -> b | Some s -> Batch.with_sel b s
        in
        let c = eval view conj in
        let keep = Array.make n 0 in
        let k = ref 0 in
        (match !cur with
        | None ->
            for li = 0 to n - 1 do
              if truth c li = 1 then begin
                keep.(!k) <- li;
                incr k
              end
            done
        | Some s ->
            for li = 0 to n - 1 do
              if truth c li = 1 then begin
                keep.(!k) <- s.(li);
                incr k
              end
            done);
        cur := Some (Array.sub keep 0 !k)
      end)
    conjs;
  match !cur with Some s -> s | None -> Array.init b.nrows Fun.id
