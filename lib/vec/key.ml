(** Group-id assignment over column subsets: the vectorized engine's
    replacement for [Hashtbl]s keyed by projected {!Tuple.t}s.

    A keyset interns rows — identified by (source, physical row index)
    where a {e source} is a registered array of columns — into dense group
    ids [0, 1, 2, ...] assigned in first-appearance order.  That order is
    load-bearing: the row oracle emits groups (DISTINCT firsts, GROUP BY
    groups, coalesce prefixes) in first-appearance order, and the
    vectorized operators inherit it from the keyset for free.

    Equality is the row oracle's key equality, i.e. structural
    [Stdlib.compare = 0] on boxed values ({!Value.compare} = 0): NULLs
    compare equal to NULLs, [Int 1] and [Float 1.] are distinct keys, and
    [-0.0]/[0.0] (and NaNs) coincide.  Hashes are computed from the
    unboxed representation but agree across representations (a boxed
    [Int] hashes like an [int array] cell), so a typed column and a boxed
    fallback column can meet in one keyset. *)

open Tkr_relation

let null_hash = 0x4e55
let mix h x = (h * 0x01000193) lxor (x land max_int)

let hash_cell (c : Batch.col) (i : int) : int =
  if Batch.is_null_at c i then null_hash
  else
    match c.data with
    | Batch.Ints a -> mix 2 (Hashtbl.hash a.(i))
    | Batch.Floats a -> mix 3 (Hashtbl.hash a.(i))
    | Batch.Bools a -> mix 1 (Hashtbl.hash a.(i))
    | Batch.Strs a -> mix 4 (Hashtbl.hash a.(i))
    | Batch.Boxed a -> (
        match a.(i) with
        | Value.Null -> null_hash (* unreachable: is_null_at caught it *)
        | Value.Bool v -> mix 1 (Hashtbl.hash v)
        | Value.Int v -> mix 2 (Hashtbl.hash v)
        | Value.Float v -> mix 3 (Hashtbl.hash v)
        | Value.Str v -> mix 4 (Hashtbl.hash v))

let eq_cell (c1 : Batch.col) (i1 : int) (c2 : Batch.col) (i2 : int) : bool =
  let n1 = Batch.is_null_at c1 i1 and n2 = Batch.is_null_at c2 i2 in
  if n1 || n2 then n1 && n2
  else
    match (c1.data, c2.data) with
    | Batch.Ints a, Batch.Ints b -> Int.equal a.(i1) b.(i2)
    | Batch.Floats a, Batch.Floats b -> Float.compare a.(i1) b.(i2) = 0
    | Batch.Bools a, Batch.Bools b -> Bool.equal a.(i1) b.(i2)
    | Batch.Strs a, Batch.Strs b -> String.equal a.(i1) b.(i2)
    | _ ->
        (* mixed representations (boxed fallback involved) or mixed typed
           variants: box and compare canonically *)
        Value.compare (Batch.value c1 i1) (Batch.value c2 i2) = 0

let hash_row (cols : Batch.col array) (i : int) : int =
  let h = ref 0x811c9dc5 in
  for j = 0 to Array.length cols - 1 do
    h := mix !h (hash_cell cols.(j) i)
  done;
  !h land max_int

let eq_row (cols1 : Batch.col array) (i1 : int) (cols2 : Batch.col array)
    (i2 : int) : bool =
  let k = Array.length cols1 in
  let rec go j = j >= k || (eq_cell cols1.(j) i1 cols2.(j) i2 && go (j + 1)) in
  go 0

(* All-int fast path.  When every column of every source is an unboxed
   [Ints] array with no validity mask, hashing degenerates to integer
   mixing and equality to [=] on array cells — no polymorphic hash, no
   per-cell NULL checks.  The choice is made once at {!create}; a keyset
   uses one hash function throughout, so cached entry hashes stay
   consistent. *)

let eq_int_row (c1 : int array array) (i1 : int) (c2 : int array array)
    (i2 : int) : bool =
  let k = Array.length c1 in
  let rec go j = j >= k || (c1.(j).(i1) = c2.(j).(i2) && go (j + 1)) in
  go 0

let hash_int_row (cols : int array array) (i : int) : int =
  let h = ref 0x811c9dc5 in
  for j = 0 to Array.length cols - 1 do
    let x = cols.(j).(i) * 0x9E3779B97F4A7C1 in
    h := (!h * 0x01000193) lxor x lxor (x lsr 31)
  done;
  !h land max_int

type t = {
  srcs : Batch.col array array;  (** registered key-column sets *)
  ints : int array array array option;
      (** raw arrays per source when every key column is null-free [Ints] *)
  mutable slots : int array;  (** entry id + 1; 0 = empty *)
  mutable mask : int;  (** capacity - 1 (capacity a power of two) *)
  mutable count : int;
  mutable e_src : int array;  (** per entry: source id *)
  mutable e_row : int array;  (** per entry: physical row in its source *)
  mutable e_hash : int array;
}

let create ?(hint = 16) (srcs : Batch.col array array) : t =
  let cap = ref 16 in
  while !cap < hint * 2 do
    cap := !cap * 2
  done;
  let all_ints =
    Array.for_all
      (Array.for_all (fun (c : Batch.col) ->
           match (c.Batch.data, c.Batch.nulls) with
           | Batch.Ints _, None -> true
           | _ -> false))
      srcs
  in
  let ints =
    if not all_ints then None
    else
      Some
        (Array.map
           (Array.map (fun (c : Batch.col) ->
                match c.Batch.data with
                | Batch.Ints a -> a
                | _ -> assert false))
           srcs)
  in
  {
    srcs;
    ints;
    slots = Array.make !cap 0;
    mask = !cap - 1;
    count = 0;
    e_src = Array.make !cap 0;
    e_row = Array.make !cap 0;
    e_hash = Array.make !cap 0;
  }

let count t = t.count
let entry_src t e = t.e_src.(e)
let entry_row t e = t.e_row.(e)

(* slot index holding an equal entry, or the insertion slot (empty). *)
let find_slot t ~hash ~(cols : Batch.col array) ~(row : int) : int =
  let rec go i =
    let s = t.slots.(i) in
    if s = 0 then i
    else
      let e = s - 1 in
      if
        t.e_hash.(e) = hash
        && eq_row t.srcs.(t.e_src.(e)) t.e_row.(e) cols row
      then i
      else go ((i + 1) land t.mask)
  in
  go (hash land t.mask)

let find_slot_int t (srcs : int array array array) ~hash
    ~(cols : int array array) ~(row : int) : int =
  let rec go i =
    let s = t.slots.(i) in
    if s = 0 then i
    else
      let e = s - 1 in
      if
        t.e_hash.(e) = hash
        && eq_int_row srcs.(t.e_src.(e)) t.e_row.(e) cols row
      then i
      else go ((i + 1) land t.mask)
  in
  go (hash land t.mask)

let grow t =
  let old_slots = t.slots in
  let cap = (t.mask + 1) * 2 in
  t.slots <- Array.make cap 0;
  t.mask <- cap - 1;
  let e_src = Array.make cap 0 and e_row = Array.make cap 0 in
  let e_hash = Array.make cap 0 in
  Array.blit t.e_src 0 e_src 0 t.count;
  Array.blit t.e_row 0 e_row 0 t.count;
  Array.blit t.e_hash 0 e_hash 0 t.count;
  t.e_src <- e_src;
  t.e_row <- e_row;
  t.e_hash <- e_hash;
  (* reinsert by cached hash; entries keep their ids *)
  Array.iter
    (fun s ->
      if s <> 0 then begin
        let e = s - 1 in
        let rec place i =
          if t.slots.(i) = 0 then t.slots.(i) <- s
          else place ((i + 1) land t.mask)
        in
        place (t.e_hash.(e) land t.mask)
      end)
    old_slots

(** Intern (source, row): the existing group id when an equal row was
    interned before, otherwise the next fresh id (ids are dense, in
    first-appearance order). *)
let intern t ~(src : int) ~(row : int) : int =
  if (t.count + 1) * 4 > (t.mask + 1) * 3 then grow t;
  let hash, i =
    match t.ints with
    | Some srcs ->
        let cols = srcs.(src) in
        let hash = hash_int_row cols row in
        (hash, find_slot_int t srcs ~hash ~cols ~row)
    | None ->
        let cols = t.srcs.(src) in
        let hash = hash_row cols row in
        (hash, find_slot t ~hash ~cols ~row)
  in
  if t.slots.(i) <> 0 then t.slots.(i) - 1
  else begin
    let e = t.count in
    t.slots.(i) <- e + 1;
    t.e_src.(e) <- src;
    t.e_row.(e) <- row;
    t.e_hash.(e) <- hash;
    t.count <- e + 1;
    e
  end

(** The group id of (source, row), or [-1] when absent. *)
let lookup t ~(src : int) ~(row : int) : int =
  let i =
    match t.ints with
    | Some srcs ->
        let cols = srcs.(src) in
        find_slot_int t srcs ~hash:(hash_int_row cols row) ~cols ~row
    | None ->
        let cols = t.srcs.(src) in
        find_slot t ~hash:(hash_row cols row) ~cols ~row
  in
  if t.slots.(i) = 0 then -1 else t.slots.(i) - 1
