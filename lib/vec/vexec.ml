(** The vectorized plan executor.

    Evaluates the same physical {!Algebra.t} plans as the interpreted row
    engine ({!Tkr_engine.Exec}), but batch-at-a-time over columnar
    {!Batch.t}s: filters narrow selection vectors, joins probe a columnar
    keyset and gather, the temporal sweeps (coalesce / split / split_agg)
    run over dense [Abegin]/[Aend] int arrays.

    {b Correctness bar: byte-identity with the row oracle.}  For every
    plan and database, [eval] must produce exactly the rows [Exec.eval]
    produces, in exactly the same order — the row interpreter is the
    differential-testing oracle, so every operator here reproduces its
    emission order: probe order and per-key right-row order for hash
    joins, first-appearance order for groups and DISTINCT, counting
    semantics for EXCEPT ALL, first-appearance + stable-by-begin entry
    order for the split_agg combine.

    Operators the vectorized engine does not (or is asked not to) handle
    natively cross the batch↔row boundary: the subtree is delegated to
    [Exec.eval] and its table re-imported with {!Batch.of_table}.  The
    [force_row] hook exposes that boundary for differential tests.

    Execution is serial: results do not depend on a worker pool, so
    [--jobs N] trivially reproduces the same bytes. *)

open Tkr_relation
module Table = Tkr_engine.Table
module Database = Tkr_engine.Database
module Exec = Tkr_engine.Exec
module Idx_cache = Tkr_engine.Idx_cache
module Trace = Tkr_obs.Trace

type ctx = {
  obs : Trace.t;
  db : Database.t;
  force_row : Algebra.t -> bool;
      (* the batch↔row boundary: subtrees matching this predicate run on
         the interpreted engine *)
  use_index : bool;
      (* answer index-answerable period-table selections through the
         temporal interval index (byte-identical either way) *)
}

let rows_in sp batches =
  match sp with
  | None -> ()
  | Some _ ->
      Trace.set_int sp "rows_in"
        (List.fold_left (fun acc b -> acc + Batch.length b) 0 batches)

(* ---- select ---- *)

let select sp pred (b : Batch.t) : Batch.t =
  Trace.set_int sp "conjuncts" (List.length (Expr.conjuncts pred));
  Batch.with_sel b (Veval.filter b pred)

(* Mirror of [Exec.index_select] at batch level: probe the interval index
   for the candidate physical rows, install them as the batch's
   selection, and let [Veval.filter] re-apply the full predicate over
   that view.  The probe bounds are necessary conditions and candidates
   come back in ascending physical order (= the identity selection's
   order), so the surviving selection vector is exactly the one the full
   filter would produce. *)
let index_select (db : Database.t) sp pred (n : string) : Batch.t option =
  let t = Database.find db n in
  let arity = Schema.arity (Table.schema t) in
  match Tkr_idx.Probe.bounds ~arity pred with
  | None -> None
  | Some { Tkr_idx.Probe.b_hi; e_lo } -> (
      match Idx_cache.get db n with
      | None -> None
      | Some idx ->
          let b = Batch.of_table t in
          let cand = Tkr_idx.Interval.probe idx ~b_hi ~e_lo in
          Tkr_idx.Stats.record_probes ~probes:1
            ~candidates:(Array.length cand);
          rows_in sp [ b ];
          Trace.set_str sp "access" "index";
          Trace.set_int sp "candidates" (Array.length cand);
          Trace.set_int sp "conjuncts" (List.length (Expr.conjuncts pred));
          let view = Batch.with_sel b cand in
          Some (Batch.with_sel b (Veval.filter view pred)))

(* ---- project ---- *)

let project (projs : Algebra.proj list) (b : Batch.t) : Batch.t =
  let schema = Batch.schema b in
  let out_schema =
    Schema.make
      (List.map
         (fun (p : Algebra.proj) ->
           Schema.attr p.name (Expr.infer_ty schema p.expr))
         projs)
  in
  let cols = Array.of_list (List.map (fun (p : Algebra.proj) -> Veval.eval b p.expr) projs) in
  Batch.of_cols out_schema (Batch.length b) cols

(* ---- union / except ---- *)

let union (a : Batch.t) (b : Batch.t) : Batch.t =
  if not (Schema.union_compatible (Batch.schema a) (Batch.schema b)) then
    invalid_arg "engine: UNION ALL over incompatible schemas";
  Batch.append a b

(* EXCEPT ALL via counting, like the oracle: every right row cancels one
   matching left row; surviving left rows keep their order. *)
let except_all (a : Batch.t) (b : Batch.t) : Batch.t =
  if not (Schema.union_compatible (Batch.schema a) (Batch.schema b)) then
    invalid_arg "engine: EXCEPT ALL over incompatible schemas";
  let key = Key.create ~hint:(Batch.length b) [| b.Batch.cols; a.Batch.cols |] in
  let counts = ref (Array.make 16 0) in
  let bump g =
    if g >= Array.length !counts then begin
      let c' = Array.make (max (2 * Array.length !counts) (g + 1)) 0 in
      Array.blit !counts 0 c' 0 (Array.length !counts);
      counts := c'
    end;
    !counts.(g) <- !counts.(g) + 1
  in
  let nb = Batch.length b in
  for ri = 0 to nb - 1 do
    bump (Key.intern key ~src:0 ~row:(Batch.phys b ri))
  done;
  let na = Batch.length a in
  let keep = Ibuf.create ~cap:na () in
  for li = 0 to na - 1 do
    let pi = Batch.phys a li in
    let g = Key.lookup key ~src:1 ~row:pi in
    if g >= 0 && !counts.(g) > 0 then !counts.(g) <- !counts.(g) - 1
    else Ibuf.push keep pi
  done;
  Batch.with_sel a (Ibuf.to_array keep)

(* ---- join ---- *)

(* Filter candidate pairs by [residual] and gather the joined output.
   Only the columns the residual references are gathered before the
   filter; the full gather happens on the survivors. *)
let pair_result out_schema (lb : Batch.t) (rb : Batch.t) (lphys : int array)
    (rphys : int array) (residual : Expr.t option) : Batch.t * int =
  let la = Array.length lb.Batch.cols and ra = Array.length rb.Batch.cols in
  let npairs = Array.length lphys in
  let lkeep, rkeep, passed =
    match residual with
    | None -> (lphys, rphys, npairs)
    | Some p ->
        let needed = List.sort_uniq Int.compare (Expr.cols p) in
        let placeholder = { Batch.data = Batch.Ints [||]; nulls = None } in
        let cols = Array.make (la + ra) placeholder in
        List.iter
          (fun j ->
            cols.(j) <-
              (if j < la then Batch.gather_col lb.Batch.cols.(j) lphys
               else Batch.gather_col rb.Batch.cols.(j - la) rphys))
          needed;
        let pview = Batch.of_cols out_schema npairs cols in
        let sel = Veval.filter pview p in
        ( Array.map (fun k -> lphys.(k)) sel,
          Array.map (fun k -> rphys.(k)) sel,
          Array.length sel )
  in
  let cols =
    Array.init (la + ra) (fun j ->
        if j < la then Batch.gather_col lb.Batch.cols.(j) lkeep
        else Batch.gather_col rb.Batch.cols.(j - la) rkeep)
  in
  (Batch.of_cols out_schema (Array.length lkeep) cols, passed)

(* Candidate-pair test compiled from a residual whose every conjunct
   compares two non-null unboxed int columns — the shape the period
   encoding produces for interval overlap ([b1 < e2 AND b2 < e1]).  Such
   conjuncts are two-valued, so testing pairs inline during the probe is
   exactly [Veval.filter] on the materialized candidates, without ever
   gathering the rejected ones.  [None] for any other residual. *)
let fused_residual (la : int) (lb : Batch.t) (rb : Batch.t) (p : Expr.t) :
    (int -> int -> bool) option =
  let int_col j : (int -> int -> int) option =
    let side (c : Batch.col) (pick : int -> int -> int) =
      match (c.Batch.data, c.Batch.nulls) with
      | Batch.Ints a, None -> Some (fun lp rp -> a.(pick lp rp))
      | _ -> None
    in
    if j < la then side lb.Batch.cols.(j) (fun lp _ -> lp)
    else side rb.Batch.cols.(j - la) (fun _ rp -> rp)
  in
  let conj_test = function
    | Expr.Cmp (op, Expr.Col x, Expr.Col y) -> (
        match (int_col x, int_col y) with
        | Some gx, Some gy ->
            Some
              (fun lp rp ->
                Veval.cmp_result op (Int.compare (gx lp rp) (gy lp rp)))
        | _ -> None)
    | _ -> None
  in
  let rec all = function
    | [] -> Some []
    | e :: rest -> (
        match (conj_test e, all rest) with
        | Some t, Some ts -> Some (t :: ts)
        | _ -> None)
  in
  match all (Expr.conjuncts p) with
  | Some [ t ] -> Some t
  | Some ts -> Some (fun lp rp -> List.for_all (fun t -> t lp rp) ts)
  | None -> None

let hash_join sp keys residual (lb : Batch.t) (rb : Batch.t) : Batch.t =
  let out_schema = Schema.concat (Batch.schema lb) (Batch.schema rb) in
  let lkeys = List.map fst keys and rkeys = List.map snd keys in
  let lkey_cols =
    Array.of_list (List.map (fun i -> lb.Batch.cols.(i)) lkeys)
  in
  let rkey_cols =
    Array.of_list (List.map (fun j -> rb.Batch.cols.(j)) rkeys)
  in
  let nr = Batch.length rb and nl = Batch.length lb in
  let la = Array.length lb.Batch.cols in
  let fused =
    match residual with
    | Some p -> fused_residual la lb rb p
    | None -> None
  in
  (* left key columns that provably hold no NULLs need no per-row check *)
  let nullable_lkeys =
    Array.of_list
      (List.filter
         (fun i ->
           let c = lb.Batch.cols.(i) in
           c.Batch.nulls <> None
           || match c.Batch.data with Batch.Boxed _ -> true | _ -> false)
         lkeys)
  in
  let nnullable = Array.length nullable_lkeys in
  let lkey_has_null pi =
    nnullable > 0
    &&
    let rec any j =
      j < nnullable
      && (Batch.is_null_at lb.Batch.cols.(nullable_lkeys.(j)) pi
         || any (j + 1))
    in
    any 0
  in
  let lpairs = Ibuf.create ~cap:(max nl 1) () in
  let rpairs = Ibuf.create ~cap:(max nl 1) () in
  let candidates = ref 0 in
  let emit pi rp =
    incr candidates;
    match fused with
    | Some test ->
        if test pi rp then begin
          Ibuf.push lpairs pi;
          Ibuf.push rpairs rp
        end
    | None ->
        Ibuf.push lpairs pi;
        Ibuf.push rpairs rp
  in
  (* Build the keyset on the smaller input; either way the pairs come out
     left-major (left order, and right order within a left row), exactly
     like the row oracle's nested emission. *)
  if nl < nr then begin
    (* Build on the left.  Left rows sharing a group id match the same
       right rows, so matched right rows bucketed per gid (in right
       order) replay for each left row of that gid.  NULL left keys stay
       out of the table: the keyset equates NULL with NULL, but SQL join
       keys never do. *)
    let key = Key.create ~hint:nl [| lkey_cols; rkey_cols |] in
    let lgids = Array.make (max nl 1) (-1) in
    for li = 0 to nl - 1 do
      let pi = Batch.phys lb li in
      if not (lkey_has_null pi) then lgids.(li) <- Key.intern key ~src:0 ~row:pi
    done;
    let ngid = Key.count key in
    let rg = Array.make (max nr 1) (-1) in
    let counts = Array.make (max ngid 1) 0 in
    for ri = 0 to nr - 1 do
      (* a NULL right key can only hash-match a NULL entry, and none were
         interned, so no explicit right-side NULL check is needed *)
      let g = Key.lookup key ~src:1 ~row:(Batch.phys rb ri) in
      rg.(ri) <- g;
      if g >= 0 then counts.(g) <- counts.(g) + 1
    done;
    let offsets = Array.make (ngid + 1) 0 in
    for g = 1 to ngid do
      offsets.(g) <- offsets.(g - 1) + counts.(g - 1)
    done;
    let bucket = Array.make (max offsets.(ngid) 1) 0 in
    let fill = Array.sub offsets 0 (max ngid 1) in
    for ri = 0 to nr - 1 do
      let g = rg.(ri) in
      if g >= 0 then begin
        bucket.(fill.(g)) <- Batch.phys rb ri;
        fill.(g) <- fill.(g) + 1
      end
    done;
    for li = 0 to nl - 1 do
      let g = lgids.(li) in
      if g >= 0 then begin
        let pi = Batch.phys lb li in
        for k = offsets.(g) to offsets.(g + 1) - 1 do
          emit pi bucket.(k)
        done
      end
    done
  end
  else begin
    (* Build on the right: bucket every right row per gid, probe in left
       order.  NULL right keys may sit in the table, but a non-NULL left
       probe never equals them. *)
    let key = Key.create ~hint:nr [| rkey_cols; lkey_cols |] in
    let rgids =
      Array.init nr (fun ri -> Key.intern key ~src:0 ~row:(Batch.phys rb ri))
    in
    let ngid = Key.count key in
    let counts = Array.make (max ngid 1) 0 in
    Array.iter (fun g -> counts.(g) <- counts.(g) + 1) rgids;
    let offsets = Array.make (ngid + 1) 0 in
    for g = 1 to ngid do
      offsets.(g) <- offsets.(g - 1) + counts.(g - 1)
    done;
    let bucket = Array.make (max nr 1) 0 in
    let fill = Array.sub offsets 0 (max ngid 1) in
    for ri = 0 to nr - 1 do
      let g = rgids.(ri) in
      bucket.(fill.(g)) <- ri;
      fill.(g) <- fill.(g) + 1
    done;
    for li = 0 to nl - 1 do
      let pi = Batch.phys lb li in
      if not (lkey_has_null pi) then begin
        let g = Key.lookup key ~src:1 ~row:pi in
        if g >= 0 && g < ngid then
          for k = offsets.(g) to offsets.(g + 1) - 1 do
            emit pi (Batch.phys rb bucket.(k))
          done
      end
    done
  end;
  let result, passed =
    pair_result out_schema lb rb (Ibuf.to_array lpairs) (Ibuf.to_array rpairs)
      (if Option.is_none fused then residual else None)
  in
  Trace.set_int sp "candidates" !candidates;
  Trace.set_bool sp "residual" (residual <> None);
  Trace.set_int sp "residual_passed"
    (if Option.is_none fused then passed else Ibuf.length lpairs);
  result

let nested_loop_join (pred : Expr.t) (lb : Batch.t) (rb : Batch.t) : Batch.t =
  let out_schema = Schema.concat (Batch.schema lb) (Batch.schema rb) in
  let nl = Batch.length lb and nr = Batch.length rb in
  let npairs = nl * nr in
  let lphys = Array.make (max npairs 1) 0 in
  let rphys = Array.make (max npairs 1) 0 in
  let k = ref 0 in
  for li = 0 to nl - 1 do
    let pi = Batch.phys lb li in
    for ri = 0 to nr - 1 do
      lphys.(!k) <- pi;
      rphys.(!k) <- Batch.phys rb ri;
      incr k
    done
  done;
  let lphys = Array.sub lphys 0 npairs and rphys = Array.sub rphys 0 npairs in
  fst (pair_result out_schema lb rb lphys rphys (Some pred))

let join sp pred (lb : Batch.t) (rb : Batch.t) : Batch.t =
  match Expr.equi_keys ~left_arity:(Schema.arity (Batch.schema lb)) pred with
  | [], _ ->
      Trace.set_str sp "strategy" "nested_loop";
      Trace.set_int sp "pairs" (Batch.length lb * Batch.length rb);
      nested_loop_join pred lb rb
  | keys, residual ->
      Trace.set_str sp "strategy" "hash";
      Trace.set_int sp "equi_keys" (List.length keys);
      hash_join sp keys residual lb rb

(* ---- aggregate / distinct ---- *)

(* dynamic array of per-group accumulator rows *)
type accs = { mutable arr : Agg.acc array array; mutable groups : int }

let accs_create () = { arr = Array.make 16 [||]; groups = 0 }

let accs_add t naggs =
  if t.groups = Array.length t.arr then begin
    let a' = Array.make (2 * t.groups) [||] in
    Array.blit t.arr 0 a' 0 t.groups;
    t.arr <- a'
  end;
  t.arr.(t.groups) <- Array.make naggs Agg.empty;
  t.groups <- t.groups + 1

let aggregate (group : Algebra.proj list) (aggs : Algebra.agg_spec list)
    (b : Batch.t) : Batch.t =
  let child_schema = Batch.schema b in
  let out_schema = Neval.agg_out_schema child_schema group aggs in
  let n = Batch.length b in
  let gcols =
    Array.of_list (List.map (fun (p : Algebra.proj) -> Veval.eval b p.expr) group)
  in
  let agg_arr = Array.of_list aggs in
  let naggs = Array.length agg_arr in
  let inputs =
    Array.map
      (fun (spec : Algebra.agg_spec) ->
        Option.map (Veval.eval b) (Agg.input_expr spec.func))
      agg_arr
  in
  let key = Key.create ~hint:n [| gcols |] in
  let accs = accs_create () in
  let reps = Ibuf.create () in
  for i = 0 to n - 1 do
    (* [gcols] are dense: logical index = physical index *)
    let g = Key.intern key ~src:0 ~row:i in
    if g = accs.groups then begin
      accs_add accs naggs;
      Ibuf.push reps i
    end;
    let acc_row = accs.arr.(g) in
    for j = 0 to naggs - 1 do
      let v =
        match inputs.(j) with
        | None -> Value.Int 1
        | Some c -> Batch.value c i
      in
      acc_row.(j) <- Agg.step acc_row.(j) v
    done
  done;
  (* aggregation over no rows without GROUP BY: one all-empty group *)
  if group = [] && accs.groups = 0 then begin
    ignore (Key.intern key ~src:0 ~row:0);
    accs_add accs naggs;
    Ibuf.push reps 0
  end;
  let ng = accs.groups in
  let rep_arr = Ibuf.to_array reps in
  let key_cols = Array.map (fun c -> Batch.gather_col c rep_arr) gcols in
  let agg_cols =
    Array.mapi
      (fun j (spec : Algebra.agg_spec) ->
        Batch.col_of_values
          (Agg.output_ty child_schema spec.func)
          ng
          (fun g -> Agg.final spec.func accs.arr.(g).(j)))
      agg_arr
  in
  Batch.of_cols out_schema ng (Array.append key_cols agg_cols)

let distinct (b : Batch.t) : Batch.t =
  let n = Batch.length b in
  let key = Key.create ~hint:n [| b.Batch.cols |] in
  let keep = Ibuf.create ~cap:(max n 1) () in
  for li = 0 to n - 1 do
    let pi = Batch.phys b li in
    let before = Key.count key in
    if Key.intern key ~src:0 ~row:pi = before then Ibuf.push keep pi
  done;
  Batch.with_sel b (Ibuf.to_array keep)

(* ---- temporal operators: sweeps over dense endpoint arrays ---- *)

(* per-group int buffers, indexed by dense group id *)
type gbufs = { mutable bufs : Ibuf.t array; mutable n : int }

let gbufs_create () = { bufs = Array.make 16 (Ibuf.create ~cap:1 ()); n = 0 }

let gbufs_add t =
  if t.n = Array.length t.bufs then begin
    let a' = Array.make (2 * t.n) t.bufs.(0) in
    Array.blit t.bufs 0 a' 0 t.n;
    t.bufs <- a'
  end;
  t.bufs.(t.n) <- Ibuf.create ();
  t.n <- t.n + 1

let sort_dedup (a : int array) : int array =
  Isort.sort a;
  let n = Array.length a in
  if n = 0 then a
  else begin
    let out = Array.make n a.(0) in
    let k = ref 1 in
    for i = 1 to n - 1 do
      if a.(i) <> a.(i - 1) then begin
        out.(!k) <- a.(i);
        incr k
      end
    done;
    Array.sub out 0 !k
  end

(** Multiset coalescing (Section 9): per distinct data prefix, sort the
    interval endpoints once and sweep, emitting maximal constant-count
    segments with the count as duplicate rows — same segments, same
    emission order as [Ops.coalesce]. *)
let coalesce sp (b : Batch.t) : Batch.t =
  let n = Batch.length b in
  let k = Array.length b.Batch.cols in
  let pb, pe = Batch.period_arrays b in
  let prefix = Array.sub b.Batch.cols 0 (k - 2) in
  let key = Key.create ~hint:n [| prefix |] in
  let gids = Array.init n (fun li -> Key.intern key ~src:0 ~row:(Batch.phys b li)) in
  let ng = Key.count key in
  (* per-group logical rows via counting sort (stable) *)
  let counts = Array.make (max ng 1) 0 in
  Array.iter (fun g -> counts.(g) <- counts.(g) + 1) gids;
  let offsets = Array.make (ng + 1) 0 in
  for g = 1 to ng do
    offsets.(g) <- offsets.(g - 1) + counts.(g - 1)
  done;
  let bucket = Array.make (max n 1) 0 in
  let fill = Array.sub offsets 0 (max ng 1) in
  for li = 0 to n - 1 do
    let g = gids.(li) in
    bucket.(fill.(g)) <- li;
    fill.(g) <- fill.(g) + 1
  done;
  let out_rep = Ibuf.create () and out_b = Ibuf.create () and out_e = Ibuf.create () in
  let segments = ref 0 in
  for g = 0 to ng - 1 do
    let cnt = counts.(g) in
    let rep = Key.entry_row key g in
    if cnt = 1 then begin
      (* a singleton group coalesces to itself (nothing when the period is
         empty) — most groups in near-distinct data land here *)
      let pi = Batch.phys b bucket.(offsets.(g)) in
      if pb.(pi) < pe.(pi) then begin
        incr segments;
        Ibuf.push out_rep rep;
        Ibuf.push out_b pb.(pi);
        Ibuf.push out_e pe.(pi)
      end
    end
    else begin
    (* events: +1 at begins, -1 at ends, sorted by time *)
    let events = Array.make (2 * cnt) (0, 0) in
    for j = 0 to cnt - 1 do
      let pi = Batch.phys b bucket.(offsets.(g) + j) in
      events.(2 * j) <- (pb.(pi), 1);
      events.(2 * j + 1) <- (pe.(pi), -1)
    done;
    Array.sort (fun (t1, _) (t2, _) -> Int.compare t1 t2) events;
    let len = Array.length events in
    if len > 0 then begin
      let seg_start = ref (fst events.(0)) in
      let count = ref 0 in
      let i = ref 0 in
      while !i < len do
        let t = fst events.(!i) in
        let delta = ref 0 in
        while !i < len && fst events.(!i) = t do
          delta := !delta + snd events.(!i);
          incr i
        done;
        if !delta <> 0 then begin
          if t > !seg_start && !count > 0 then begin
            incr segments;
            for _ = 1 to !count do
              Ibuf.push out_rep rep;
              Ibuf.push out_b !seg_start;
              Ibuf.push out_e t
            done
          end;
          seg_start := t;
          count := !count + !delta
        end
      done
    end
    end
  done;
  Trace.set_int sp "groups" ng;
  Trace.set_int sp "endpoints" (2 * n);
  Trace.set_int sp "segments" !segments;
  let rep_arr = Ibuf.to_array out_rep in
  let cols =
    Array.append
      (Array.map (fun c -> Batch.gather_col c rep_arr) prefix)
      [|
        { Batch.data = Batch.Ints (Ibuf.to_array out_b); nulls = None };
        { Batch.data = Batch.Ints (Ibuf.to_array out_e); nulls = None };
      |]
  in
  Batch.of_cols (Batch.schema b) (Array.length rep_arr) cols

(* endpoints of [eps] strictly inside (b, e), by binary search *)
let inner_range (eps : int array) b e =
  (* first index with eps.(i) > b *)
  let lo = ref 0 and hi = ref (Array.length eps) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if eps.(mid) <= b then lo := mid + 1 else hi := mid
  done;
  let first = !lo in
  let lo = ref first and hi = ref (Array.length eps) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if eps.(mid) < e then lo := mid + 1 else hi := mid
  done;
  (first, !lo)

(** The split operator N_G (Def. 8.3): every left row is cut at the
    endpoints of all rows (of both inputs) agreeing with it on the group
    columns.  Fragments come out per left row, forward in time, like
    [Ops.split]. *)
let split sp (group_cols : int list) (lb : Batch.t) (rb : Batch.t) : Batch.t =
  let lpb, lpe = Batch.period_arrays lb in
  let rpb, rpe = Batch.period_arrays rb in
  let lg = Array.of_list (List.map (fun i -> lb.Batch.cols.(i)) group_cols) in
  let rg = Array.of_list (List.map (fun i -> rb.Batch.cols.(i)) group_cols) in
  let nl = Batch.length lb and nr = Batch.length rb in
  let key = Key.create ~hint:(nl + nr) [| lg; rg |] in
  let eps = gbufs_create () in
  let seen g =
    while g >= eps.n do
      gbufs_add eps
    done
  in
  let lgids = Array.make (max nl 1) 0 in
  for li = 0 to nl - 1 do
    let pi = Batch.phys lb li in
    let g = Key.intern key ~src:0 ~row:pi in
    lgids.(li) <- g;
    seen g;
    Ibuf.push eps.bufs.(g) lpb.(pi);
    Ibuf.push eps.bufs.(g) lpe.(pi)
  done;
  for ri = 0 to nr - 1 do
    let pi = Batch.phys rb ri in
    let g = Key.intern key ~src:1 ~row:pi in
    seen g;
    Ibuf.push eps.bufs.(g) rpb.(pi);
    Ibuf.push eps.bufs.(g) rpe.(pi)
  done;
  let ng = Key.count key in
  let sorted = Array.init ng (fun g -> sort_dedup (Ibuf.to_array eps.bufs.(g))) in
  let out_rep = Ibuf.create () and out_b = Ibuf.create () and out_e = Ibuf.create () in
  for li = 0 to nl - 1 do
    let pi = Batch.phys lb li in
    let g = lgids.(li) in
    let b = lpb.(pi) and e = lpe.(pi) in
    let pts = sorted.(g) in
    let first, stop = inner_range pts b e in
    let prev = ref b in
    for idx = first to stop - 1 do
      Ibuf.push out_rep pi;
      Ibuf.push out_b !prev;
      Ibuf.push out_e pts.(idx);
      prev := pts.(idx)
    done;
    Ibuf.push out_rep pi;
    Ibuf.push out_b !prev;
    Ibuf.push out_e e
  done;
  (match sp with
  | None -> ()
  | Some _ ->
      Trace.set_int sp "endpoint_keys" ng;
      Trace.set_int sp "endpoints"
        (Array.fold_left (fun acc a -> acc + Array.length a) 0 sorted);
      Trace.set_int sp "fragments" (Ibuf.length out_rep));
  let rep_arr = Ibuf.to_array out_rep in
  let k = Array.length lb.Batch.cols in
  let cols =
    Array.append
      (Array.map
         (fun c -> Batch.gather_col c rep_arr)
         (Array.sub lb.Batch.cols 0 (k - 2)))
      [|
        { Batch.data = Batch.Ints (Ibuf.to_array out_b); nulls = None };
        { Batch.data = Batch.Ints (Ibuf.to_array out_e); nulls = None };
      |]
  in
  Batch.of_cols (Batch.schema lb) (Array.length rep_arr) cols

(** Fused pre-aggregated split+aggregate (Section 9), reproducing
    [Ops.split_agg]'s deterministic entry order: pre-aggregates are kept
    in first-appearance order and stable-sorted by begin, so the
    per-segment combine folds in the same order (bit-identical floats). *)
let split_agg sp ~(group : int list) ~(aggs : Algebra.agg_spec list)
    ~(gap : (int * int) option) (child : Batch.t) : Batch.t =
  let child_schema = Batch.schema child in
  let n = Batch.length child in
  let agg_arr = Array.of_list aggs in
  let naggs = Array.length agg_arr in
  let pb, pe = Batch.period_arrays child in
  let gcols = Array.of_list (List.map (fun i -> child.Batch.cols.(i)) group) in
  let inputs =
    Array.map
      (fun (spec : Algebra.agg_spec) ->
        Option.map (Veval.eval child) (Agg.input_expr spec.func))
      agg_arr
  in
  let key = Key.create ~hint:n [| gcols |] in
  (* pre-aggregate per (group id, b, e); entries keep first-appearance
     order globally and per group.  The entry index is open-addressed on
     the int triple directly — no tuple boxing, no polymorphic hash. *)
  let pre_cap = ref 16 in
  while !pre_cap < 2 * max n 1 do
    pre_cap := !pre_cap * 2
  done;
  let pre_slots = Array.make !pre_cap 0 (* entry id + 1; 0 = empty *) in
  let pre_mask = !pre_cap - 1 in
  let e_g = Ibuf.create () in
  let e_b = Ibuf.create () and e_e = Ibuf.create () in
  let pre_slot g b e =
    let h =
      let h =
        (g * 0x9E3779B97F4A7C1) lxor (b * 0x85EBCA6B) lxor (e * 0xC2B2AE35)
      in
      (h lxor (h lsr 31)) land max_int
    in
    let rec go i =
      let s = pre_slots.(i) in
      if s = 0 then i
      else
        let id = s - 1 in
        if Ibuf.get e_g id = g && Ibuf.get e_b id = b && Ibuf.get e_e id = e
        then i
        else go ((i + 1) land pre_mask)
    in
    go (h land pre_mask)
  in
  let e_accs = ref (Array.make 16 [||]) in
  let n_entries = ref 0 in
  let group_entries = gbufs_create () in
  let group_eps = gbufs_create () in
  let seen g =
    while g >= group_entries.n do
      gbufs_add group_entries;
      gbufs_add group_eps
    done
  in
  (* unboxed per-(entry, agg) counters when every input is an int column
     (or [count( * )]'s constant 1): exactly [Agg.step]'s effect on int
     inputs, deferred into [acc] records once per entry instead of
     allocating per row *)
  let fast_in : (int array option * bool array option) array option =
    let ok =
      Array.for_all
        (function
          | None -> true
          | Some { Batch.data = Batch.Ints _; _ } -> true
          | Some _ -> false)
        inputs
    in
    if ok then
      Some
        (Array.map
           (function
             | None -> (None, None)
             | Some { Batch.data = Batch.Ints a; Batch.nulls } -> (Some a, nulls)
             | Some _ -> assert false)
           inputs)
    else None
  in
  let st_len = if fast_in = None then 1 else max (n * naggs) 1 in
  let st_rows = Array.make st_len 0 in
  let st_nn = Array.make st_len 0 in
  let st_sum = Array.make st_len 0 in
  let st_min = Array.make st_len 0 in
  let st_max = Array.make st_len 0 in
  for li = 0 to n - 1 do
    let pi = Batch.phys child li in
    let g = Key.intern key ~src:0 ~row:pi in
    seen g;
    let b = pb.(pi) and e = pe.(pi) in
    let slot = pre_slot g b e in
    let id =
      if pre_slots.(slot) <> 0 then pre_slots.(slot) - 1
      else begin
        let id = !n_entries in
        incr n_entries;
        pre_slots.(slot) <- id + 1;
        Ibuf.push e_g g;
        Ibuf.push e_b b;
        Ibuf.push e_e e;
        if id >= Array.length !e_accs then begin
          let a' = Array.make (2 * id) [||] in
          Array.blit !e_accs 0 a' 0 id;
          e_accs := a'
        end;
        !e_accs.(id) <- Array.make naggs Agg.empty;
        Ibuf.push group_entries.bufs.(g) id;
        id
      end
    in
    (match fast_in with
    | Some fi ->
        let base = id * naggs in
        for j = 0 to naggs - 1 do
          let data, mask = fi.(j) in
          st_rows.(base + j) <- st_rows.(base + j) + 1;
          let isnull = match mask with Some m -> m.(li) | None -> false in
          if not isnull then begin
            let v = match data with Some a -> a.(li) | None -> 1 in
            if st_nn.(base + j) = 0 then begin
              st_sum.(base + j) <- v;
              st_min.(base + j) <- v;
              st_max.(base + j) <- v
            end
            else begin
              st_sum.(base + j) <- st_sum.(base + j) + v;
              if v < st_min.(base + j) then st_min.(base + j) <- v;
              if v > st_max.(base + j) then st_max.(base + j) <- v
            end;
            st_nn.(base + j) <- st_nn.(base + j) + 1
          end
        done
    | None ->
        let acc_row = !e_accs.(id) in
        for j = 0 to naggs - 1 do
          let v =
            match inputs.(j) with
            | None -> Value.Int 1
            | Some c -> Batch.value c li
          in
          acc_row.(j) <- Agg.step acc_row.(j) v
        done);
    Ibuf.push group_eps.bufs.(g) b;
    Ibuf.push group_eps.bufs.(g) e
  done;
  (match fast_in with
  | Some _ ->
      for id = 0 to !n_entries - 1 do
        let base = id * naggs in
        let accs = !e_accs.(id) in
        for j = 0 to naggs - 1 do
          let nn = st_nn.(base + j) in
          accs.(j) <-
            (if nn = 0 then
               Agg.of_counters ~rows:st_rows.(base + j) ~nonnull:0
                 ~sum:Value.Null ()
             else
               Agg.of_counters ~rows:st_rows.(base + j) ~nonnull:nn
                 ~sum:(Value.Int st_sum.(base + j))
                 ~vmin:(Value.Int st_min.(base + j))
                 ~vmax:(Value.Int st_max.(base + j)) ())
        done
      done
  | None -> ());
  (* the empty group must exist (and span the time domain) for
     gap-covering aggregation; with [group = []] it is the one group *)
  (match gap with
  | Some (tmin, tmax) ->
      if Key.count key = 0 then begin
        ignore (Key.intern key ~src:0 ~row:0);
        seen 0
      end;
      Ibuf.push group_eps.bufs.(0) tmin;
      Ibuf.push group_eps.bufs.(0) tmax
  | None -> ());
  let ng = Key.count key in
  (* The per-segment fold over covering entries can become an
     O(entries log entries) enter/leave sweep when every spec's state is
     maintainable incrementally with exact results: row/nonnull counts
     always (exact ints), sums when every pre-aggregate summed to an
     [Int] (int addition is associative; float addition is
     order-sensitive and must keep the fold), and min/max when every
     pre-aggregate's extremum is an [Int] (equal ints are
     indistinguishable, so the fold's tie-breaking cannot show; mixed
     Int/Float ties or -0.0 vs 0.0 could). *)
  let invertible =
    let ok = ref true in
    for id = 0 to !n_entries - 1 do
      let accs = !e_accs.(id) in
      for j = 0 to naggs - 1 do
        let exact v =
          match v with Value.Int _ | Value.Null -> () | _ -> ok := false
        in
        match agg_arr.(j).Algebra.func with
        | Agg.Count_star | Agg.Count _ -> ()
        | Agg.Sum _ | Agg.Avg _ -> exact (Agg.sum accs.(j))
        | Agg.Min _ -> exact (Agg.vmin accs.(j))
        | Agg.Max _ -> exact (Agg.vmax accs.(j))
      done
    done;
    !ok
  in
  (* lazy-expiry heaps for the min/max specs: every live entry's extremum
     is in its spec's heap, so once expired tops are popped the top is the
     covering minimum (maxima are negated into the same min-heaps) *)
  let heaps =
    Array.map
      (fun (spec : Algebra.agg_spec) ->
        if invertible then
          match spec.Algebra.func with
          | Agg.Min _ | Agg.Max _ -> Some (Iheap.create ())
          | _ -> None
        else None)
      agg_arr
  in
  let out_rep = Ibuf.create () and out_b = Ibuf.create () and out_e = Ibuf.create () in
  let finals_rev : Value.t list ref array = Array.map (fun _ -> ref []) agg_arr in
  let endpoints = ref 0 in
  for g = 0 to ng - 1 do
    let rep = Key.entry_row key g in
    let segs = sort_dedup (Ibuf.to_array group_eps.bufs.(g)) in
    endpoints := !endpoints + Array.length segs;
    (* entries of this group in begin order, stable on first appearance *)
    let ids = Ibuf.to_array group_entries.bufs.(g) in
    let nid = Array.length ids in
    let bs = Array.make (max nid 1) 0 and es = Array.make (max nid 1) 0 in
    for i = 0 to nid - 1 do
      bs.(i) <- Ibuf.get e_b ids.(i);
      es.(i) <- Ibuf.get e_e ids.(i)
    done;
    let ord = Isort.perm_prefix bs nid in
    if invertible then begin
      (* running counters equal the fold over covering entries: integer
         adds are associative, so leave-time subtraction is exact.  Live
         entries (non-empty periods) in begin order, as parallel arrays *)
      let lb_ = Array.make (max nid 1) 0
      and le_ = Array.make (max nid 1) 0
      and lacc = Array.make (max nid 1) [||] in
      let nlive = ref 0 in
      Array.iter
        (fun i ->
          if es.(i) > bs.(i) then begin
            lb_.(!nlive) <- bs.(i);
            le_.(!nlive) <- es.(i);
            lacc.(!nlive) <- !e_accs.(ids.(i));
            incr nlive
          end)
        ord;
      let ne = !nlive in
      let by_end = Isort.perm_prefix le_ ne in
      Array.iter (function Some h -> Iheap.clear h | None -> ()) heaps;
      let rows_a = Array.make naggs 0 and nn_a = Array.make naggs 0 in
      let sum_a = Array.make naggs 0 and nsum_a = Array.make naggs 0 in
      let apply sign (accs : Agg.acc array) =
        for j = 0 to naggs - 1 do
          let a = accs.(j) in
          rows_a.(j) <- rows_a.(j) + (sign * Agg.rows a);
          nn_a.(j) <- nn_a.(j) + (sign * Agg.nonnull a);
          match Agg.sum a with
          | Value.Int s ->
              sum_a.(j) <- sum_a.(j) + (sign * s);
              nsum_a.(j) <- nsum_a.(j) + sign
          | _ -> ()
        done
      in
      (* min/max state never leaves a heap early; expiry happens at the
         segment boundary pops below *)
      let push_extrema e (accs : Agg.acc array) =
        for j = 0 to naggs - 1 do
          match heaps.(j) with
          | None -> ()
          | Some h -> (
              match agg_arr.(j).Algebra.func with
              | Agg.Min _ -> (
                  match Agg.vmin accs.(j) with
                  | Value.Int v -> Iheap.push h v e
                  | _ -> ())
              | Agg.Max _ -> (
                  match Agg.vmax accs.(j) with
                  | Value.Int v -> Iheap.push h (-v) e
                  | _ -> ())
              | _ -> ())
        done
      in
      let enter = ref 0 and leave = ref 0 and n_active = ref 0 in
      for s = 0 to Array.length segs - 2 do
        let sb = segs.(s) and se = segs.(s + 1) in
        while !leave < ne && le_.(by_end.(!leave)) <= sb do
          apply (-1) lacc.(by_end.(!leave));
          decr n_active;
          incr leave
        done;
        while !enter < ne && lb_.(!enter) <= sb do
          apply 1 lacc.(!enter);
          push_extrema le_.(!enter) lacc.(!enter);
          incr n_active;
          incr enter
        done;
        Array.iter
          (function
            | Some h ->
                while Iheap.size h > 0 && Iheap.top_expiry h <= sb do
                  Iheap.pop h
                done
            | None -> ())
          heaps;
        if !n_active = 0 && gap = None then ()
        else begin
          Array.iteri
            (fun j (spec : Algebra.agg_spec) ->
              let sum =
                if nsum_a.(j) = 0 then Value.Null else Value.Int sum_a.(j)
              in
              let extremum negate =
                match heaps.(j) with
                | Some h when Iheap.size h > 0 ->
                    Value.Int (if negate then -(Iheap.top h) else Iheap.top h)
                | _ -> Value.Null
              in
              let vmin = extremum false and vmax = extremum true in
              let acc =
                Agg.of_counters ~rows:rows_a.(j) ~nonnull:nn_a.(j) ~sum ~vmin
                  ~vmax ()
              in
              finals_rev.(j) := Agg.final spec.func acc :: !(finals_rev.(j)))
            agg_arr;
          Ibuf.push out_rep rep;
          Ibuf.push out_b sb;
          Ibuf.push out_e se
        end
      done
    end
    else begin
      let entries =
        Array.map (fun i -> (bs.(i), es.(i), !e_accs.(ids.(i)))) ord
      in
      let remaining = ref (Array.to_list entries) in
      let active = ref [] in
      for s = 0 to Array.length segs - 2 do
        let sb = segs.(s) and se = segs.(s + 1) in
        let rec pull () =
          match !remaining with
          | (b, e, accs) :: rest when b <= sb ->
              remaining := rest;
              if e > sb then active := (e, accs) :: !active;
              pull ()
          | _ -> ()
        in
        pull ();
        active := List.filter (fun (e, _) -> e > sb) !active;
        let covering = List.map snd !active in
        if covering = [] && gap = None then ()
        else begin
          Array.iteri
            (fun j (spec : Algebra.agg_spec) ->
              let acc =
                List.fold_left
                  (fun acc accs -> Agg.combine acc accs.(j))
                  Agg.empty covering
              in
              finals_rev.(j) := Agg.final spec.func acc :: !(finals_rev.(j)))
            agg_arr;
          Ibuf.push out_rep rep;
          Ibuf.push out_b sb;
          Ibuf.push out_e se
        end
      done
    end
  done;
  (match sp with
  | None -> ()
  | Some _ ->
      Trace.set_int sp "groups" ng;
      Trace.set_int sp "pre_aggregates" !n_entries;
      Trace.set_int sp "endpoints" !endpoints);
  let out_schema =
    let gattrs = List.map (fun i -> Schema.get child_schema i) group in
    let aattrs =
      List.map
        (fun (a : Algebra.agg_spec) ->
          Schema.attr a.agg_name (Agg.output_ty child_schema a.func))
        aggs
    in
    Schema.make
      (gattrs @ aattrs
      @ [ Schema.attr "__b" Value.TInt; Schema.attr "__e" Value.TInt ])
  in
  let rep_arr = Ibuf.to_array out_rep in
  let nout = Array.length rep_arr in
  let finals_cols =
    Array.mapi
      (fun j (spec : Algebra.agg_spec) ->
        let vals = Array.of_list (List.rev !(finals_rev.(j))) in
        Batch.col_of_values
          (Agg.output_ty child_schema spec.func)
          nout
          (fun i -> vals.(i)))
      agg_arr
  in
  let cols =
    Array.concat
      [
        Array.map (fun c -> Batch.gather_col c rep_arr) gcols;
        finals_cols;
        [|
          { Batch.data = Batch.Ints (Ibuf.to_array out_b); nulls = None };
          { Batch.data = Batch.Ints (Ibuf.to_array out_e); nulls = None };
        |];
      ]
  in
  Batch.of_cols out_schema nout cols

(* ---- the interpreter loop ---- *)

let rec eval_batch (ctx : ctx) (q : Algebra.t) : Batch.t =
  if ctx.force_row q then
    (* batch↔row boundary: this subtree runs on the interpreted engine *)
    Batch.of_table (Exec.eval ~obs:ctx.obs ctx.db q)
  else begin
    Trace.with_span ctx.obs (Exec.op_label q) @@ fun sp ->
    Trace.set_str sp "engine" "vec";
    let result =
      match q with
      | Algebra.Rel n ->
          let b = Batch.of_table (Database.find ctx.db n) in
          rows_in sp [ b ];
          b
      | ConstRel (schema, tuples) ->
          let b = Batch.of_rows schema (Array.of_list tuples) in
          rows_in sp [ b ];
          b
      | Select (p, q) -> (
          let scan () =
            let b = eval_batch ctx q in
            rows_in sp [ b ];
            select sp p b
          in
          match q with
          | Algebra.Rel n when Database.is_period ctx.db n -> (
              match
                if ctx.use_index then index_select ctx.db sp p n else None
              with
              | Some res -> res
              | None ->
                  Trace.set_str sp "access" "scan";
                  scan ())
          | _ -> scan ())
      | Project (projs, q) ->
          let b = eval_batch ctx q in
          rows_in sp [ b ];
          project projs b
      | Join (p, l, r) ->
          let lb = eval_batch ctx l in
          let rb = eval_batch ctx r in
          rows_in sp [ lb; rb ];
          join sp p lb rb
      | Union (l, r) ->
          let lb = eval_batch ctx l in
          let rb = eval_batch ctx r in
          rows_in sp [ lb; rb ];
          union lb rb
      | Diff (l, r) ->
          let lb = eval_batch ctx l in
          let rb = eval_batch ctx r in
          rows_in sp [ lb; rb ];
          except_all lb rb
      | Agg (group, aggs, q) ->
          let b = eval_batch ctx q in
          rows_in sp [ b ];
          aggregate group aggs b
      | Distinct q ->
          let b = eval_batch ctx q in
          rows_in sp [ b ];
          distinct b
      | Coalesce q ->
          let b = eval_batch ctx q in
          rows_in sp [ b ];
          coalesce sp b
      | Split (g, l, r) ->
          (* avoid evaluating a shared subquery twice *)
          if l == r then begin
            let b = eval_batch ctx l in
            rows_in sp [ b ];
            split sp g b b
          end
          else begin
            let lb = eval_batch ctx l in
            let rb = eval_batch ctx r in
            rows_in sp [ lb; rb ];
            split sp g lb rb
          end
      | Split_agg sa ->
          let b = eval_batch ctx sa.sa_child in
          rows_in sp [ b ];
          if sa.sa_gap <> None && sa.sa_group <> [] then
            (* gap-filling with grouping has no defined output shape; keep
               the oracle's behaviour by delegating *)
            Batch.of_table
              (Tkr_engine.Ops.split_agg ?sp ~group:sa.sa_group
                 ~aggs:sa.sa_aggs ~gap:sa.sa_gap (Batch.to_table b))
          else
            split_agg sp ~group:sa.sa_group ~aggs:sa.sa_aggs ~gap:sa.sa_gap b
    in
    (match sp with
    | None -> ()
    | Some _ -> Trace.set_int sp "rows_out" (Batch.length result));
    result
  end

(** Evaluate a plan on the vectorized engine.  [force_row] (default:
    never) marks subtrees to delegate to the row oracle across the
    batch↔row boundary — the differential tests drive it with random
    predicates to exercise the boundary at every operator.  [use_index]
    (default off) answers index-answerable period-table selections
    through the temporal interval index; output is byte-identical either
    way. *)
let eval ?(obs = Trace.disabled) ?(force_row = fun _ -> false)
    ?(use_index = false) (db : Database.t) (q : Algebra.t) : Table.t =
  Batch.to_table (eval_batch { obs; db; force_row; use_index } q)
