(** Binary min-heap of (key, expiry) int pairs, for the lazy-expiry
    min/max sweep in {!Vexec.split_agg}.

    Every live interval's key is pushed once; expired tops are popped at
    each segment boundary.  Expired pairs deeper in the heap are harmless:
    they only sit below smaller keys, so an unexpired top is the minimum
    over the live pairs. *)

type t = {
  mutable keys : int array;  (** heap-ordered *)
  mutable exps : int array;  (** expiry (exclusive end) per key *)
  mutable n : int;
}

let create () = { keys = Array.make 16 0; exps = Array.make 16 0; n = 0 }
let clear (h : t) = h.n <- 0
let size (h : t) = h.n
let top (h : t) = h.keys.(0)
let top_expiry (h : t) = h.exps.(0)

let swap h i j =
  let k = h.keys.(i) and e = h.exps.(i) in
  h.keys.(i) <- h.keys.(j);
  h.exps.(i) <- h.exps.(j);
  h.keys.(j) <- k;
  h.exps.(j) <- e

let push (h : t) (key : int) (expiry : int) : unit =
  if h.n = Array.length h.keys then begin
    let keys = Array.make (2 * h.n) 0 and exps = Array.make (2 * h.n) 0 in
    Array.blit h.keys 0 keys 0 h.n;
    Array.blit h.exps 0 exps 0 h.n;
    h.keys <- keys;
    h.exps <- exps
  end;
  let i = ref h.n in
  h.n <- h.n + 1;
  h.keys.(!i) <- key;
  h.exps.(!i) <- expiry;
  let up = ref true in
  while !up && !i > 0 do
    let p = (!i - 1) / 2 in
    if h.keys.(p) > h.keys.(!i) then begin
      swap h p !i;
      i := p
    end
    else up := false
  done

let pop (h : t) : unit =
  h.n <- h.n - 1;
  if h.n > 0 then begin
    h.keys.(0) <- h.keys.(h.n);
    h.exps.(0) <- h.exps.(h.n);
    let i = ref 0 in
    let down = ref true in
    while !down do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let m = ref !i in
      if l < h.n && h.keys.(l) < h.keys.(!m) then m := l;
      if r < h.n && h.keys.(r) < h.keys.(!m) then m := r;
      if !m <> !i then begin
        swap h !m !i;
        i := !m
      end
      else down := false
    done
  end
