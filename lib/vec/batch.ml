(** Columnar batches: the vectorized engine's physical representation.

    A batch holds one column per schema attribute.  Column data is stored
    unboxed per scalar type ([int array], [float array], ...) with an
    optional validity mask ([nulls.(i)] = the value at physical row [i] is
    NULL); a column whose values do not all match its declared type (or
    that mixes types) falls back to a boxed [Value.t array], which every
    consumer handles, so the representation is total over any row table.

    The period encoding's [Abegin]/[Aend] attributes are ordinary trailing
    [TInt] columns and therefore come out as dense [int array]s — exactly
    the layout the temporal sweeps want.

    Row visibility is a {e selection vector}: [sel = Some s] means the
    batch's logical rows are the physical rows [s.(0), s.(1), ...] in that
    order.  Filters narrow the selection instead of materializing; payload
    columns are only gathered when an operator needs dense data
    ({!compact}) or at the row boundary ({!to_table}). *)

open Tkr_relation
module Table = Tkr_engine.Table

type data =
  | Ints of int array
  | Floats of float array
  | Bools of bool array
  | Strs of string array
  | Boxed of Value.t array  (** fallback: values kept boxed *)

type col = { data : data; nulls : bool array option }

type t = {
  schema : Schema.t;
  nrows : int;  (** physical row count; every column has this length *)
  cols : col array;
  sel : int array option;
      (** logical rows as physical indices, in logical order *)
}

let schema b = b.schema
let length b = match b.sel with Some s -> Array.length s | None -> b.nrows

(** Physical index of logical row [i]. *)
let phys b i = match b.sel with Some s -> s.(i) | None -> i

let is_null_at (c : col) (i : int) : bool =
  (match c.nulls with Some m -> m.(i) | None -> false)
  ||
  match c.data with Boxed a -> Value.is_null a.(i) | _ -> false

(** The value at physical row [i], boxed. *)
let value (c : col) (i : int) : Value.t =
  if match c.nulls with Some m -> m.(i) | None -> false then Value.Null
  else
    match c.data with
    | Ints a -> Value.Int a.(i)
    | Floats a -> Value.Float a.(i)
    | Bools a -> Value.Bool a.(i)
    | Strs a -> Value.Str a.(i)
    | Boxed a -> a.(i)

(** The full row at physical index [i], boxed. *)
let tuple_at (b : t) (i : int) : Tuple.t =
  Tuple.of_array (Array.map (fun c -> value c i) b.cols)

(* ---- column construction ---- *)

(** Build a column of [n] values fetched by [get], stored unboxed when
    every value matches [ty] (NULLs go to the validity mask), boxed
    otherwise. *)
let col_of_values (ty : Value.ty) (n : int) (get : int -> Value.t) : col =
  let nulls = ref None in
  let set_null i =
    let m =
      match !nulls with
      | Some m -> m
      | None ->
          let m = Array.make n false in
          nulls := Some m;
          m
    in
    m.(i) <- true
  in
  let box () = { data = Boxed (Array.init n get); nulls = None } in
  let exception Mismatch in
  try
    let data =
      match ty with
      | Value.TInt ->
          let a = Array.make n 0 in
          for i = 0 to n - 1 do
            match get i with
            | Value.Int v -> a.(i) <- v
            | Value.Null -> set_null i
            | _ -> raise Mismatch
          done;
          Ints a
      | Value.TFloat ->
          let a = Array.make n 0.0 in
          for i = 0 to n - 1 do
            match get i with
            | Value.Float v -> a.(i) <- v
            | Value.Null -> set_null i
            | _ -> raise Mismatch
          done;
          Floats a
      | Value.TBool ->
          let a = Array.make n false in
          for i = 0 to n - 1 do
            match get i with
            | Value.Bool v -> a.(i) <- v
            | Value.Null -> set_null i
            | _ -> raise Mismatch
          done;
          Bools a
      | Value.TStr ->
          let a = Array.make n "" in
          for i = 0 to n - 1 do
            match get i with
            | Value.Str v -> a.(i) <- v
            | Value.Null -> set_null i
            | _ -> raise Mismatch
          done;
          Strs a
    in
    { data; nulls = !nulls }
  with Mismatch -> box ()

let const_col (v : Value.t) (n : int) : col =
  match v with
  | Value.Null -> { data = Ints (Array.make n 0); nulls = Some (Array.make n true) }
  | Value.Int x -> { data = Ints (Array.make n x); nulls = None }
  | Value.Float x -> { data = Floats (Array.make n x); nulls = None }
  | Value.Bool x -> { data = Bools (Array.make n x); nulls = None }
  | Value.Str x -> { data = Strs (Array.make n x); nulls = None }

(* ---- gather / compact ---- *)

let gather_data (d : data) (idx : int array) : data =
  match d with
  | Ints a -> Ints (Array.map (fun i -> a.(i)) idx)
  | Floats a -> Floats (Array.map (fun i -> a.(i)) idx)
  | Bools a -> Bools (Array.map (fun i -> a.(i)) idx)
  | Strs a -> Strs (Array.map (fun i -> a.(i)) idx)
  | Boxed a -> Boxed (Array.map (fun i -> a.(i)) idx)

let gather_col (c : col) (idx : int array) : col =
  {
    data = gather_data c.data idx;
    nulls = Option.map (fun m -> Array.map (fun i -> m.(i)) idx) c.nulls;
  }

(** Materialize the selection: same logical rows, dense columns, no
    selection vector. *)
let compact (b : t) : t =
  match b.sel with
  | None -> b
  | Some s ->
      {
        schema = b.schema;
        nrows = Array.length s;
        cols = Array.map (fun c -> gather_col c s) b.cols;
        sel = None;
      }

(** Narrow to the given physical rows (logical order = array order). *)
let with_sel (b : t) (s : int array) : t = { b with sel = Some s }

let of_cols (schema : Schema.t) (nrows : int) (cols : col array) : t =
  { schema; nrows; cols; sel = None }

(* ---- row boundary ---- *)

let of_rows (schema : Schema.t) (rows : Tuple.t array) : t =
  let n = Array.length rows in
  let cols =
    Array.init (Schema.arity schema) (fun j ->
        col_of_values (Schema.ty schema j) n (fun i -> Tuple.get rows.(i) j))
  in
  { schema; nrows = n; cols; sel = None }

let to_table (b : t) : Table.t =
  let n = length b in
  let k = Array.length b.cols in
  Table.of_array b.schema
    (Array.init n (fun li ->
         let i = phys b li in
         Tuple.of_array (Array.init k (fun j -> value b.cols.(j) i))))

(* The columnar image of a base table is cached on the table value itself:
   tables are immutable (DML installs fresh values), so the memo never
   goes stale.  Concurrent executors may race to columnarize; both compute
   the same image and the last write wins. *)
type Table.memo += Columnar of t

let of_table (tbl : Table.t) : t =
  match Table.memo tbl with
  | Some (Columnar b) -> b
  | _ ->
      let b = of_rows (Table.schema tbl) (Table.rows tbl) in
      Table.set_memo tbl (Columnar b);
      b

(** Append two dense batches (compacting as needed); the schemas must be
    union-compatible, the left schema names the result. *)
let append (a : t) (b : t) : t =
  let a = compact a and b = compact b in
  let n = a.nrows + b.nrows in
  let boxed_concat ca cb =
    let get c k = value c k in
    Boxed
      (Array.init n (fun i ->
           if i < a.nrows then get ca i else get cb (i - a.nrows)))
  in
  let concat_data ca cb =
    match (ca.data, cb.data) with
    | Ints x, Ints y -> Ints (Array.append x y)
    | Floats x, Floats y -> Floats (Array.append x y)
    | Bools x, Bools y -> Bools (Array.append x y)
    | Strs x, Strs y -> Strs (Array.append x y)
    | Boxed x, Boxed y -> Boxed (Array.append x y)
    | _ -> boxed_concat ca cb
  in
  let concat_nulls ca cb =
    match (ca.nulls, cb.nulls) with
    | None, None -> None
    | ma, mb ->
        let get m k = match m with Some m -> m.(k) | None -> false in
        Some
          (Array.init n (fun i ->
               if i < a.nrows then get ma i else get mb (i - a.nrows)))
  in
  let cols =
    Array.init (Array.length a.cols) (fun j ->
        let ca = a.cols.(j) and cb = b.cols.(j) in
        match (ca.data, cb.data) with
        | Boxed _, _ | _, Boxed _ ->
            (* boxed side swallows the other; validity lives in the values *)
            { data = boxed_concat ca cb; nulls = None }
        | _ -> { data = concat_data ca cb; nulls = concat_nulls ca cb })
  in
  { schema = a.schema; nrows = n; cols; sel = None }

(** The (b, e) period columns of a batch under the trailing-period
    encoding, as dense int arrays indexed by {e physical} row.
    @raise Invalid_argument like the row engine when a period value is not
    an integer (scans logical rows in order, so the failing row is the
    same one [Ops.period_of_row] would reject). *)
let period_arrays (b : t) : int array * int array =
  let k = Array.length b.cols in
  if k < 2 then invalid_arg "engine: malformed period encoding (non-integer period)";
  let extract (c : col) : int array =
    match (c.data, c.nulls) with
    | Ints a, None -> a
    | _ ->
        let n = length b in
        let out = Array.make b.nrows 0 in
        for li = 0 to n - 1 do
          let i = phys b li in
          match value c i with
          | Value.Int v -> out.(i) <- v
          | _ ->
              invalid_arg
                "engine: malformed period encoding (non-integer period)"
        done;
        out
  in
  (extract b.cols.(k - 2), extract b.cols.(k - 1))
