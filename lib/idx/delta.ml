(** Delta summation over interval endpoints (after Colley 2022, "An
    improved method of delta summation for faster current value
    selection").

    Every period [\[b, e)] contributes a [+1] delta at [b] and a [-1]
    delta at [e]; the number of rows alive at [t] is the prefix sum of the
    deltas up to [t].  Keeping the two endpoint multisets as separate
    sorted arrays turns the prefix sum into two binary searches:

    {v alive(t) = #{ b <= t } - #{ e <= t } v}

    which answers current-value / timeslice cardinality in O(log n)
    without touching a single row.  The same arrays double as the
    candidate-count estimator of the interval index ({!Interval}). *)

type t = {
  begins : int array;  (** all [Abegin] values, sorted ascending *)
  ends : int array;  (** all [Aend] values, sorted ascending *)
}

(** Number of elements of the sorted array [a] that are [<= x]. *)
let upper_bound (a : int array) (x : int) : int =
  let lo = ref 0 and hi = ref (Array.length a) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if a.(mid) <= x then lo := mid + 1 else hi := mid
  done;
  !lo

(** Number of elements of the sorted array [a] that are [< x]. *)
let lower_bound (a : int array) (x : int) : int =
  let lo = ref 0 and hi = ref (Array.length a) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if a.(mid) < x then lo := mid + 1 else hi := mid
  done;
  !lo

let build (periods : (int * int) array) : t =
  let n = Array.length periods in
  let begins = Array.make n 0 and ends = Array.make n 0 in
  Array.iteri
    (fun i (b, e) ->
      begins.(i) <- b;
      ends.(i) <- e)
    periods;
  Array.sort Int.compare begins;
  Array.sort Int.compare ends;
  { begins; ends }

let cardinality (d : t) = Array.length d.begins

(** Rows alive at [t]: periods with [b <= t < e].  Zero-length periods
    ([b = e]) correctly contribute nothing at any point. *)
let count_at (d : t) (t_ : int) : int =
  upper_bound d.begins t_ - upper_bound d.ends t_

(** Rows whose period overlaps [\[lo, hi)]: [b < hi] and [e > lo].
    Inclusion–exclusion over the deltas: started before [hi] minus already
    ended at or before [lo]. *)
let count_overlapping (d : t) ~(lo : int) ~(hi : int) : int =
  if hi <= lo then 0 else lower_bound d.begins hi - upper_bound d.ends lo
