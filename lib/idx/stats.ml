(** Process-wide index telemetry: builds, epoch-check rebuilds, probes
    and reported candidates, as lock-free atomics.  The serve scrape path
    exports them as [tkr_idx_*] gauges; [tkr_cli top] and [STATS] render
    the same numbers. *)

let built = Atomic.make 0
let rebuilds = Atomic.make 0
let probes = Atomic.make 0
let candidates = Atomic.make 0

let add cell n = ignore (Atomic.fetch_and_add cell n)

(** One index construction; [rebuild] marks a build that replaced a stale
    entry (the table's version counter moved past the entry's stamp). *)
let record_build ~rebuild =
  add built 1;
  if rebuild then add rebuilds 1

(** [probes] probes reporting [candidates] candidate rows in total. *)
let record_probes ~probes:p ~candidates:c =
  add probes p;
  add candidates c

type snapshot = {
  s_built : int;
  s_rebuilds : int;
  s_probes : int;
  s_candidates : int;
}

let snapshot () : snapshot =
  {
    s_built = Atomic.get built;
    s_rebuilds = Atomic.get rebuilds;
    s_probes = Atomic.get probes;
    s_candidates = Atomic.get candidates;
  }

(** Zero all counters (tests and bench isolation). *)
let reset () =
  Atomic.set built 0;
  Atomic.set rebuilds 0;
  Atomic.set probes 0;
  Atomic.set candidates 0
