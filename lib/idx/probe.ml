(** Recognition of index-answerable predicates.

    A conjunction over an encoded period table (period columns stored
    last: [Abegin] at [arity - 2], [Aend] at [arity - 1]) is
    index-answerable when its conjuncts impose both an {e upper} bound on
    [Abegin] and a {e lower} bound on [Aend] — the stab/overlap shape.
    Any such pair of bounds is a {e necessary} condition for the whole
    predicate, so the index's candidate set is a superset of the rows the
    scan keeps, and re-applying the full predicate to the candidates
    reproduces the scan exactly.  The [AS OF t] pushdown
    ([Abegin <= t AND t < Aend]) is the canonical instance.

    {!join_bounds} recognizes the per-row analogue for interval joins:
    conjuncts comparing the {e right} table's period columns against
    {e left} columns, so each left row yields a stab/overlap probe into
    the right side's index. *)

open Tkr_relation

type bounds = { b_hi : Interval.bound; e_lo : Interval.bound }

(* [a] tighter-than-or-equal [b] as an upper bound *)
let tighter_hi (a : Interval.bound) (b : Interval.bound) =
  a.Interval.v < b.Interval.v
  || (a.Interval.v = b.Interval.v && ((not a.Interval.incl) || b.Interval.incl))

(* [a] tighter-than-or-equal [b] as a lower bound *)
let tighter_lo (a : Interval.bound) (b : Interval.bound) =
  a.Interval.v > b.Interval.v
  || (a.Interval.v = b.Interval.v && ((not a.Interval.incl) || b.Interval.incl))

let pick tighter cur cand =
  match cur with
  | None -> Some cand
  | Some b -> if tighter cand b then Some cand else Some b

(** The begin-upper / end-lower bounds imposed by the conjuncts of [p]
    on the period columns of an [arity]-column encoded relation, or
    [None] unless both are present. *)
let bounds ~(arity : int) (p : Expr.t) : bounds option =
  let bcol = arity - 2 and ecol = arity - 1 in
  let b_hi = ref None and e_lo = ref None in
  let hi b = b_hi := pick tighter_hi !b_hi b
  and lo b = e_lo := pick tighter_lo !e_lo b in
  List.iter
    (fun conj ->
      match conj with
      | Expr.Cmp (op, Expr.Col c, Expr.Const (Value.Int k)) when c = bcol -> (
          (* Abegin OP k *)
          match op with
          | Expr.Le -> hi { Interval.v = k; incl = true }
          | Expr.Lt -> hi { Interval.v = k; incl = false }
          | Expr.Eq -> hi { Interval.v = k; incl = true }
          | Expr.Ge | Expr.Gt | Expr.Ne -> ())
      | Expr.Cmp (op, Expr.Const (Value.Int k), Expr.Col c) when c = bcol -> (
          (* k OP Abegin *)
          match op with
          | Expr.Ge -> hi { Interval.v = k; incl = true }
          | Expr.Gt -> hi { Interval.v = k; incl = false }
          | Expr.Eq -> hi { Interval.v = k; incl = true }
          | Expr.Le | Expr.Lt | Expr.Ne -> ())
      | Expr.Cmp (op, Expr.Col c, Expr.Const (Value.Int k)) when c = ecol -> (
          (* Aend OP k *)
          match op with
          | Expr.Ge -> lo { Interval.v = k; incl = true }
          | Expr.Gt -> lo { Interval.v = k; incl = false }
          | Expr.Eq -> lo { Interval.v = k; incl = true }
          | Expr.Le | Expr.Lt | Expr.Ne -> ())
      | Expr.Cmp (op, Expr.Const (Value.Int k), Expr.Col c) when c = ecol -> (
          (* k OP Aend *)
          match op with
          | Expr.Le -> lo { Interval.v = k; incl = true }
          | Expr.Lt -> lo { Interval.v = k; incl = false }
          | Expr.Eq -> lo { Interval.v = k; incl = true }
          | Expr.Ge | Expr.Gt | Expr.Ne -> ())
      | _ -> ())
    (Expr.conjuncts p);
  match (!b_hi, !e_lo) with
  | Some b_hi, Some e_lo -> Some { b_hi; e_lo }
  | _ -> None

type join_bounds = {
  jb_col : int;  (** left column bounding the right [Abegin] from above *)
  jb_incl : bool;
  je_col : int;  (** left column bounding the right [Aend] from below *)
  je_incl : bool;
}

(** Per-left-row probe bounds for [Join (p, l, Rel r)] where [r] is an
    encoded period table: conjuncts of the overlap shape
    [l.col > r.Abegin] / [l.col < r.Aend] (in any orientation).  [None]
    unless both sides of the sandwich are present. *)
let join_bounds ~(left_arity : int) ~(right_arity : int) (p : Expr.t) :
    join_bounds option =
  let rb = left_arity + right_arity - 2
  and re = left_arity + right_arity - 1 in
  let b_hi = ref None and e_lo = ref None in
  let set cell col incl = if !cell = None then cell := Some (col, incl) in
  List.iter
    (fun conj ->
      match conj with
      | Expr.Cmp (op, Expr.Col x, Expr.Col y) when y = rb && x < left_arity
        -> (
          (* l.x OP r.Abegin *)
          match op with
          | Expr.Ge -> set b_hi x true
          | Expr.Gt -> set b_hi x false
          | Expr.Eq -> set b_hi x true
          | Expr.Le | Expr.Lt | Expr.Ne -> ())
      | Expr.Cmp (op, Expr.Col x, Expr.Col y) when x = rb && y < left_arity
        -> (
          (* r.Abegin OP l.y *)
          match op with
          | Expr.Le -> set b_hi y true
          | Expr.Lt -> set b_hi y false
          | Expr.Eq -> set b_hi y true
          | Expr.Ge | Expr.Gt | Expr.Ne -> ())
      | Expr.Cmp (op, Expr.Col x, Expr.Col y) when y = re && x < left_arity
        -> (
          (* l.x OP r.Aend *)
          match op with
          | Expr.Le -> set e_lo x true
          | Expr.Lt -> set e_lo x false
          | Expr.Eq -> set e_lo x true
          | Expr.Ge | Expr.Gt | Expr.Ne -> ())
      | Expr.Cmp (op, Expr.Col x, Expr.Col y) when x = re && y < left_arity
        -> (
          (* r.Aend OP l.y *)
          match op with
          | Expr.Ge -> set e_lo y true
          | Expr.Gt -> set e_lo y false
          | Expr.Eq -> set e_lo y true
          | Expr.Le | Expr.Lt | Expr.Ne -> ())
      | _ -> ())
    (Expr.conjuncts p);
  match (!b_hi, !e_lo) with
  | Some (jb_col, jb_incl), Some (je_col, je_incl) ->
      Some { jb_col; jb_incl; je_col; je_incl }
  | _ -> None
