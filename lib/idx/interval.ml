(** Endpoint-sorted interval index over a period table's
    [(Abegin, Aend)] columns.

    The index keeps the rows in sweep order (sorted by begin, ties by
    physical row id): [begins] is then a sorted array, and a probe for
    "begin within bound" is one binary search giving a prefix [\[0, ub)]
    of the sweep order.  The matching rows of that prefix — those whose
    end also satisfies the probe's lower bound — are reported by
    descending a max-end segment tree built over [ends_], skipping every
    subtree whose maximum end fails the bound: output-sensitive
    O((k + 1) log n) per probe instead of O(n).

    Probes answer the two shapes the planner recognizes:
    - stab ([AS OF t]): rows alive at [t], i.e. [b <= t < e];
    - overlap range: rows with [b] within an upper bound and [e] within a
      lower bound, the generalized form every conjunction of period-column
      comparisons reduces to.

    Candidates are returned in {e ascending physical row order} — the
    scan emission order — so re-applying the full predicate to the
    candidates reproduces the scan byte-for-byte.  A {!Delta.t} built
    from the same endpoints ({!count_at}) answers cardinality questions
    without reporting rows. *)

type bound = {
  v : int;
  incl : bool;  (** [true]: bound is inclusive ([<=] resp. [>=]) *)
}

type t = {
  rows : int array;
      (* physical row ids in sweep order: sorted by (begin, row id) *)
  begins : int array;  (* begins.(k) = begin of rows.(k); ascending *)
  ends_ : int array;  (* ends_.(k) = end of rows.(k) *)
  seg : int array;
      (* max-end segment tree over [ends_]: 1-based heap layout with
         [leaves] leaves, [seg.(leaves + k)] = [ends_.(k)], padded with
         [min_int] *)
  leaves : int;  (* power of two >= number of indexed rows *)
  delta : Delta.t;
}

let size (t : t) = Array.length t.rows

let build (periods : (int * int) array) : t =
  let m = Array.length periods in
  let rows = Array.init m Fun.id in
  Array.sort
    (fun i j ->
      let c = Int.compare (fst periods.(i)) (fst periods.(j)) in
      if c <> 0 then c else Int.compare i j)
    rows;
  let begins = Array.map (fun i -> fst periods.(i)) rows in
  let ends_ = Array.map (fun i -> snd periods.(i)) rows in
  let leaves =
    let l = ref 1 in
    while !l < m do
      l := !l * 2
    done;
    !l
  in
  let seg = Array.make (2 * leaves) min_int in
  Array.blit ends_ 0 seg leaves m;
  for node = leaves - 1 downto 1 do
    seg.(node) <- max seg.(2 * node) seg.((2 * node) + 1)
  done;
  { rows; begins; ends_; seg; leaves; delta = Delta.build periods }

(** Candidate rows with begin within [b_hi] (from above) and end within
    [e_lo] (from below), ascending by physical row id. *)
let probe (t : t) ~(b_hi : bound) ~(e_lo : bound) : int array =
  let m = Array.length t.rows in
  (* prefix of the sweep order whose begins satisfy the upper bound *)
  let ub =
    if b_hi.incl then Delta.upper_bound t.begins b_hi.v
    else Delta.lower_bound t.begins b_hi.v
  in
  (* report ends as [>= min_end]; an exclusive max_int bound matches
     nothing (there is no end beyond max_int) *)
  let empty = (not e_lo.incl) && e_lo.v = max_int in
  let min_end = if e_lo.incl then e_lo.v else e_lo.v + 1 in
  if ub = 0 || m = 0 || empty then [||]
  else begin
    let out = ref [] and k = ref 0 in
    (* descend left-to-right, skipping subtrees that are entirely past
       [ub] or whose max end is below the bound *)
    let rec report node lo hi =
      if lo < ub && t.seg.(node) >= min_end then
        if hi - lo = 1 then begin
          out := t.rows.(lo) :: !out;
          incr k
        end
        else begin
          let mid = (lo + hi) / 2 in
          report (2 * node) lo mid;
          report ((2 * node) + 1) mid hi
        end
    in
    report 1 0 t.leaves;
    let a = Array.make !k 0 in
    List.iteri (fun i r -> a.(!k - 1 - i) <- r) !out;
    (* sweep order is by begin, not by row id: restore scan order *)
    Array.sort Int.compare a;
    a
  end

(** Rows alive at [t] ([b <= t < e]), ascending by physical row id. *)
let stab (t : t) (at : int) : int array =
  probe t ~b_hi:{ v = at; incl = true } ~e_lo:{ v = at; incl = false }

(** O(log n) cardinality of {!stab}, by delta summation. *)
let count_at (t : t) (at : int) : int = Delta.count_at t.delta at

let delta (t : t) : Delta.t = t.delta
