(** Structured JSONL event log for the serve path.

    Each emitted line is a JSON object with [ts_ms] (wall-clock integer
    milliseconds since the epoch), [mono_ns] (monotonic nanoseconds),
    [seq], [severity], [event] and the event's own fields.  Request events carry the wire-propagated trace
    id so log lines correlate with response envelopes and execution
    traces on one id.

    Emission is mutex-serialized and rate-limited per second of the
    monotonic clock; drops are counted and announced by a synthetic
    [rate_limited] line at the next window rollover.  The {!disabled}
    sink makes every operation a no-op — call sites guard event
    construction on {!enabled} so disabled telemetry costs nothing. *)

type severity = Debug | Info | Warn | Error

val severity_to_string : severity -> string

type event =
  | Conn_open of { session : int }
  | Conn_close of { session : int }
  | Request_start of {
      session : int;
      req_id : int;
      trace_id : string;
      stmt : string;
    }
  | Request_finish of {
      session : int;
      req_id : int;
      trace_id : string;
      status : string;  (** ["ok"] or the wire error code *)
      cached : bool;
      elapsed_us : int;
    }
  | Cache_hit of { fingerprint : string }
  | Cache_miss of { fingerprint : string }
  | Cache_evict of { count : int }
  | Invalidation of { table : string; version : int }
  | Admission_reject of { session : int; reason : string }
  | Epoch_bump of { epoch : int }
  | Drain of { reason : string }
  | Slow_query of {
      trace_id : string;
      fingerprint : string;
      stmt : string;
      queue_us : int;
      exec_us : int;
      total_us : int;
      disposition : string;  (** cache disposition: hit/miss/off/bypass *)
    }

val severity_of : event -> severity
(** The severity {!emit} attaches to each event kind. *)

type sink =
  | Null
  | Chan of out_channel  (** one flushed JSONL line per event *)
  | Fn of (Tkr_obs.Json.t -> unit)  (** tests and embedders *)

type t

val disabled : t
(** The shared no-op log: [enabled disabled = false] and {!emit} returns
    immediately. *)

val default_rate_limit : int
(** The default events-per-second ceiling (5000) — exported so CLI
    option help and defaults stay in sync with the implementation. *)

val create :
  ?clock:Tkr_obs.Clock.t ->
  ?wall:(unit -> float) ->
  ?rate_limit:int ->
  sink ->
  t
(** [rate_limit] is the events-per-second ceiling (default
    {!default_rate_limit}; [0] = unlimited).  [clock] and [wall] are
    injectable for tests. *)

val enabled : t -> bool
(** [false] for {!disabled} and for closed logs.  Guard event
    construction on this to keep disabled telemetry allocation-free. *)

val emit : t -> event -> unit

val emitted : t -> int
(** Lines written (excluding synthetic [rate_limited] lines). *)

val dropped : t -> int
(** Events discarded by the rate limiter. *)

val close : t -> unit
(** Flush and disable.  Idempotent; the underlying channel (if any) is
    not closed — the caller owns it. *)
