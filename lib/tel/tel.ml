(** Tkr_tel: the live-telemetry event log.

    A {!t} is a JSONL sink for the typed serve-path events below.  Every
    line carries a wall-clock timestamp ([ts_ms], integer milliseconds
    since the epoch), a monotonic timestamp ([mono_ns], for ordering and
    latency arithmetic), a per-sink sequence number, a severity and the
    event's own fields.  Request events carry the wire-propagated trace id, so a
    log line, the response envelope and the optional execution trace all
    correlate on one id.

    The {!disabled} sink is free: {!enabled} is a physical-equality
    check, and instrumentation sites guard event construction on it, so
    a server without telemetry allocates nothing per request.

    Emission is rate-limited (token window per second of the monotonic
    clock); dropped events are counted and announced by one synthetic
    [rate_limited] line when the window rolls over, so the log says that
    it lied rather than silently thinning.  All operations are
    mutex-serialized — the accept loop, reader threads and workers share
    one sink. *)

module Json = Tkr_obs.Json
module Clock = Tkr_obs.Clock

type severity = Debug | Info | Warn | Error

let severity_to_string = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

type event =
  | Conn_open of { session : int }
  | Conn_close of { session : int }
  | Request_start of {
      session : int;
      req_id : int;
      trace_id : string;
      stmt : string;
    }
  | Request_finish of {
      session : int;
      req_id : int;
      trace_id : string;
      status : string;  (** ["ok"] or the wire error code *)
      cached : bool;
      elapsed_us : int;
    }
  | Cache_hit of { fingerprint : string }
  | Cache_miss of { fingerprint : string }
  | Cache_evict of { count : int }
  | Invalidation of { table : string; version : int }
  | Admission_reject of { session : int; reason : string }
  | Epoch_bump of { epoch : int }
  | Drain of { reason : string }
  | Slow_query of {
      trace_id : string;
      fingerprint : string;
      stmt : string;
      queue_us : int;
      exec_us : int;
      total_us : int;
      disposition : string;  (** cache disposition: hit/miss/off/bypass *)
    }

let severity_of : event -> severity = function
  | Conn_open _ | Conn_close _ | Request_start _ | Cache_hit _ | Cache_miss _
  | Epoch_bump _ ->
      Debug
  | Request_finish { status; _ } -> if status = "ok" then Info else Error
  | Cache_evict _ | Invalidation _ | Drain _ -> Info
  | Admission_reject _ | Slow_query _ -> Warn

let event_fields : event -> string * (string * Json.t) list = function
  | Conn_open { session } -> ("conn_open", [ ("session", Json.Int session) ])
  | Conn_close { session } -> ("conn_close", [ ("session", Json.Int session) ])
  | Request_start { session; req_id; trace_id; stmt } ->
      ( "request_start",
        [
          ("session", Json.Int session);
          ("id", Json.Int req_id);
          ("trace_id", Json.Str trace_id);
          ("stmt", Json.Str stmt);
        ] )
  | Request_finish { session; req_id; trace_id; status; cached; elapsed_us } ->
      ( "request_finish",
        [
          ("session", Json.Int session);
          ("id", Json.Int req_id);
          ("trace_id", Json.Str trace_id);
          ("status", Json.Str status);
          ("cached", Json.Bool cached);
          ("elapsed_us", Json.Int elapsed_us);
        ] )
  | Cache_hit { fingerprint } ->
      ("cache_hit", [ ("fingerprint", Json.Str fingerprint) ])
  | Cache_miss { fingerprint } ->
      ("cache_miss", [ ("fingerprint", Json.Str fingerprint) ])
  | Cache_evict { count } -> ("cache_evict", [ ("count", Json.Int count) ])
  | Invalidation { table; version } ->
      ( "invalidation",
        [ ("table", Json.Str table); ("version", Json.Int version) ] )
  | Admission_reject { session; reason } ->
      ( "admission_reject",
        [ ("session", Json.Int session); ("reason", Json.Str reason) ] )
  | Epoch_bump { epoch } -> ("epoch_bump", [ ("epoch", Json.Int epoch) ])
  | Drain { reason } -> ("drain", [ ("reason", Json.Str reason) ])
  | Slow_query { trace_id; fingerprint; stmt; queue_us; exec_us; total_us;
                 disposition } ->
      ( "slow_query",
        [
          ("trace_id", Json.Str trace_id);
          ("fingerprint", Json.Str fingerprint);
          ("stmt", Json.Str stmt);
          ("queue_us", Json.Int queue_us);
          ("exec_us", Json.Int exec_us);
          ("total_us", Json.Int total_us);
          ("disposition", Json.Str disposition);
        ] )

type sink =
  | Null
  | Chan of out_channel  (** one flushed line per event *)
  | Fn of (Json.t -> unit)  (** tests and embedders *)

type t = {
  mutable sink : sink;  (** flipped to [Null] by {!close} *)
  lock : Mutex.t;
  clock : Clock.t;
  wall : unit -> float;
  max_per_sec : int;  (** 0 = unlimited *)
  mutable window_start : int64;  (** monotonic ns of the current window *)
  mutable window_count : int;
  mutable window_dropped : int;
  mutable dropped_total : int;
  mutable emitted_total : int;
  mutable seq : int;
}

let default_rate_limit = 5_000

let disabled : t =
  {
    sink = Null;
    lock = Mutex.create ();
    clock = Clock.monotonic;
    wall = Unix.gettimeofday;
    max_per_sec = 0;
    window_start = 0L;
    window_count = 0;
    window_dropped = 0;
    dropped_total = 0;
    emitted_total = 0;
    seq = 0;
  }

let create ?(clock = Clock.monotonic) ?(wall = Unix.gettimeofday)
    ?(rate_limit = default_rate_limit) sink : t =
  {
    sink;
    lock = Mutex.create ();
    clock;
    wall;
    max_per_sec = max 0 rate_limit;
    window_start = clock ();
    window_count = 0;
    window_dropped = 0;
    dropped_total = 0;
    emitted_total = 0;
    seq = 0;
  }

let enabled t = t.sink != Null (* phys: [disabled] is shared and immutable *)

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let write t (j : Json.t) =
  match t.sink with
  | Null -> ()
  | Chan oc ->
      output_string oc (Json.to_string j);
      output_char oc '\n';
      flush oc
  | Fn f -> f j

let line t ~mono_ns ~severity ~name fields : Json.t =
  t.seq <- t.seq + 1;
  Json.Obj
    (* integer milliseconds: exact in JSON, unlike a float epoch *)
    (("ts_ms", Json.Int (int_of_float (t.wall () *. 1000.)))
    :: ("mono_ns", Json.Int (Int64.to_int mono_ns))
    :: ("seq", Json.Int t.seq)
    :: ("severity", Json.Str (severity_to_string severity))
    :: ("event", Json.Str name)
    :: fields)

let emit t (e : event) : unit =
  if enabled t then
    locked t @@ fun () ->
    match t.sink with
    | Null -> () (* closed between the check and the lock *)
    | _ ->
        let now = t.clock () in
        (* roll the one-second window; announce what the full one ate *)
        if Int64.sub now t.window_start >= 1_000_000_000L then begin
          if t.window_dropped > 0 then
            write t
              (line t ~mono_ns:now ~severity:Warn ~name:"rate_limited"
                 [ ("dropped", Json.Int t.window_dropped) ]);
          t.window_start <- now;
          t.window_count <- 0;
          t.window_dropped <- 0
        end;
        if t.max_per_sec > 0 && t.window_count >= t.max_per_sec then begin
          t.window_dropped <- t.window_dropped + 1;
          t.dropped_total <- t.dropped_total + 1
        end
        else begin
          t.window_count <- t.window_count + 1;
          t.emitted_total <- t.emitted_total + 1;
          let name, fields = event_fields e in
          write t (line t ~mono_ns:now ~severity:(severity_of e) ~name fields)
        end

let emitted t = locked t (fun () -> t.emitted_total)
let dropped t = locked t (fun () -> t.dropped_total)

let close t =
  locked t @@ fun () ->
  (match t.sink with
  | Chan oc -> ( try flush oc with Sys_error _ -> ())
  | Null | Fn _ -> ());
  t.sink <- Null
