(** Export a stored benchmark report to external tooling: OpenMetrics
    text for Prometheus scrapes/pushgateways, folded stacks for
    flamegraph.pl / speedscope. *)

module Json = Tkr_obs.Json
module Trace = Tkr_obs.Trace
module Openmetrics = Tkr_obs.Openmetrics

(** The report's results as one OpenMetrics document:
    [tkr_bench_wall_ns_per_run{suite,test}] and [tkr_bench_runs] gauges,
    plus one [tkr_bench_counter{suite,test,counter}] gauge per recorded
    operator/GC counter.  Environment metadata rides along as an
    info-style gauge. *)
let to_openmetrics (rep : Bench_result.report) : string =
  let labels (r : Bench_result.result) =
    [ ("suite", r.suite); ("test", r.name) ]
  in
  let env = rep.env in
  Openmetrics.document
    [
      Openmetrics.gauge ~help:"benchmark environment" "tkr_bench_env_info"
        [
          ( [
              ("ocaml_version", env.Env.ocaml_version);
              ("git_sha", env.Env.git_sha);
              ("hostname", env.Env.hostname);
              ("os_type", env.Env.os_type);
              ("source", rep.source);
            ],
            1.0 );
        ];
      Openmetrics.gauge ~help:"mean wall time per run"
        "tkr_bench_wall_ns_per_run"
        (List.map (fun r -> (labels r, r.Bench_result.wall_ns_per_run)) rep.results);
      Openmetrics.gauge ~help:"samples behind the mean" "tkr_bench_runs"
        (List.map
           (fun r -> (labels r, float_of_int r.Bench_result.runs))
           rep.results);
      Openmetrics.gauge ~help:"operator and GC counters" "tkr_bench_counter"
        (List.concat_map
           (fun r ->
             List.map
               (fun (k, v) -> (labels r @ [ ("counter", k) ], v))
               r.Bench_result.counters)
           rep.results);
    ]

(* the trace trees a producer stored under "operator_traces":
   [{ "query": name, "trace": [span...] }, ...] *)
let stored_traces (rep : Bench_result.report) : (string * Trace.span list) list =
  match List.assoc_opt "operator_traces" rep.extra with
  | Some (Json.List items) ->
      List.map
        (fun item ->
          let name =
            match Option.bind (Json.member "query" item) Json.to_string_opt with
            | Some q -> q
            | None -> "query"
          in
          let spans =
            match Json.member "trace" item with
            | Some (Json.List roots) -> List.map Trace.of_json_value roots
            | _ -> []
          in
          (name, spans))
        items
  | _ -> []

(** Every stored operator trace as folded stacks, each root prefixed with
    its query name ([query;operator;... <self-ns>]).  Empty when the
    report carries no [operator_traces]. *)
let to_folded (rep : Bench_result.report) : string =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (query, spans) ->
      List.iter
        (fun sp ->
          String.split_on_char '\n' (Trace.to_folded sp)
          |> List.iter (fun line ->
                 if line <> "" then (
                   Buffer.add_string buf query;
                   Buffer.add_char buf ';';
                   Buffer.add_string buf line;
                   Buffer.add_char buf '\n')))
        spans)
    (stored_traces rep);
  Buffer.contents buf
