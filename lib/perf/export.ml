(** Export a stored benchmark report to external tooling: OpenMetrics
    text for Prometheus scrapes/pushgateways, folded stacks for
    flamegraph.pl / speedscope. *)

module Json = Tkr_obs.Json
module Trace = Tkr_obs.Trace
module Openmetrics = Tkr_obs.Openmetrics

(* the trace trees a producer stored under "operator_traces":
   [{ "query": name, "trace": [span...] }, ...] *)
let stored_traces (rep : Bench_result.report) : (string * Trace.span list) list =
  match List.assoc_opt "operator_traces" rep.extra with
  | Some (Json.List items) ->
      List.map
        (fun item ->
          let name =
            match Option.bind (Json.member "query" item) Json.to_string_opt with
            | Some q -> q
            | None -> "query"
          in
          let spans =
            match Json.member "trace" item with
            | Some (Json.List roots) -> List.map Trace.of_json_value roots
            | _ -> []
          in
          (name, spans))
        items
  | _ -> []

(* pool-parallelism attribution that [Tkr_par.Pool.record] stamped on
   trace spans: summed counters per query, plus per-domain chunk counts
   parsed back out of the [par_domains] string ("slot:chunks/busy-ms",
   space-separated). *)
type par_stats = {
  ps_query : string;
  ps_jobs : int;  (** widest fan-out seen on any span *)
  ps_chunks : int;
  ps_steals : int;
  ps_merge_ns : int;
  ps_domains : (int * int) list;  (** (slot, chunks), ascending slot *)
}

let domain_tokens s =
  List.filter_map
    (fun tok ->
      match String.index_opt tok ':' with
      | None -> None
      | Some i -> (
          let slot = int_of_string_opt (String.sub tok 0 i) in
          let rest =
            String.sub tok (i + 1) (String.length tok - i - 1)
          in
          let chunks =
            match String.index_opt rest '/' with
            | Some j -> int_of_string_opt (String.sub rest 0 j)
            | None -> int_of_string_opt rest
          in
          match (slot, chunks) with
          | Some slot, Some chunks -> Some (slot, chunks)
          | _ -> None))
    (String.split_on_char ' ' s)

let par_stats (rep : Bench_result.report) : par_stats list =
  let int_attr sp key =
    match Trace.find_attr sp key with
    | Some (Trace.Int i) -> i
    | Some (Trace.Float f) -> int_of_float f
    | _ -> 0
  in
  List.filter_map
    (fun (query, spans) ->
      let jobs = ref 0
      and chunks = ref 0
      and steals = ref 0
      and merge_ns = ref 0 in
      let domains : (int, int) Hashtbl.t = Hashtbl.create 8 in
      List.iter
        (Trace.iter (fun sp ->
             jobs := max !jobs (int_attr sp Trace.par_jobs);
             chunks := !chunks + int_attr sp Trace.par_chunks;
             steals := !steals + int_attr sp Trace.par_steals;
             merge_ns := !merge_ns + int_attr sp Trace.par_merge_ns;
             match Trace.find_attr sp Trace.par_domains with
             | Some (Trace.Str s) ->
                 List.iter
                   (fun (slot, c) ->
                     Hashtbl.replace domains slot
                       (c
                       + Option.value ~default:0
                           (Hashtbl.find_opt domains slot)))
                   (domain_tokens s)
             | _ -> ()))
        spans;
      if !jobs = 0 && !chunks = 0 && !steals = 0 && !merge_ns = 0 then None
      else
        Some
          {
            ps_query = query;
            ps_jobs = !jobs;
            ps_chunks = !chunks;
            ps_steals = !steals;
            ps_merge_ns = !merge_ns;
            ps_domains =
              Hashtbl.fold (fun k v acc -> (k, v) :: acc) domains []
              |> List.sort compare;
          })
    (stored_traces rep)

(** The report's results as one OpenMetrics document:
    [tkr_bench_wall_ns_per_run{suite,test}] and [tkr_bench_runs] gauges,
    plus one [tkr_bench_counter{suite,test,counter}] gauge per recorded
    operator/GC counter.  Environment metadata rides along as an
    info-style gauge.  When the report stores operator traces with pool
    attribution, [tkr_bench_par{query,stat}] and
    [tkr_bench_par_domain_chunks{query,domain}] gauges are appended. *)
let to_openmetrics (rep : Bench_result.report) : string =
  let labels (r : Bench_result.result) =
    [ ("suite", r.suite); ("test", r.name) ]
  in
  let env = rep.env in
  let pool = par_stats rep in
  let pool_families =
    if pool = [] then []
    else
      [
        Openmetrics.gauge
          ~help:"work-stealing pool counters from stored operator traces"
          "tkr_bench_par"
          (List.concat_map
             (fun ps ->
               List.map
                 (fun (stat, v) ->
                   ([ ("query", ps.ps_query); ("stat", stat) ], float_of_int v))
                 [
                   ("jobs", ps.ps_jobs);
                   ("chunks", ps.ps_chunks);
                   ("steals", ps.ps_steals);
                   ("merge_ns", ps.ps_merge_ns);
                 ])
             pool);
        Openmetrics.gauge ~help:"chunks executed per pool domain"
          "tkr_bench_par_domain_chunks"
          (List.concat_map
             (fun ps ->
               List.map
                 (fun (slot, chunks) ->
                   ( [
                       ("query", ps.ps_query);
                       ("domain", string_of_int slot);
                     ],
                     float_of_int chunks ))
                 ps.ps_domains)
             pool);
      ]
  in
  Openmetrics.document
    ([
       Openmetrics.gauge ~help:"benchmark environment" "tkr_bench_env_info"
         [
           ( [
               ("ocaml_version", env.Env.ocaml_version);
               ("git_sha", env.Env.git_sha);
               ("hostname", env.Env.hostname);
               ("os_type", env.Env.os_type);
               ("source", rep.source);
             ],
             1.0 );
         ];
       Openmetrics.gauge ~help:"mean wall time per run"
         "tkr_bench_wall_ns_per_run"
         (List.map
            (fun r -> (labels r, r.Bench_result.wall_ns_per_run))
            rep.results);
       Openmetrics.gauge ~help:"samples behind the mean" "tkr_bench_runs"
         (List.map
            (fun r -> (labels r, float_of_int r.Bench_result.runs))
            rep.results);
       Openmetrics.gauge ~help:"operator and GC counters" "tkr_bench_counter"
         (List.concat_map
            (fun r ->
              List.map
                (fun (k, v) -> (labels r @ [ ("counter", k) ], v))
                r.Bench_result.counters)
            rep.results);
     ]
    @ pool_families)

(** Every stored operator trace as folded stacks, each root prefixed with
    its query name ([query;operator;... <self-ns>]).  Empty when the
    report carries no [operator_traces]. *)
let to_folded (rep : Bench_result.report) : string =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (query, spans) ->
      List.iter
        (fun sp ->
          String.split_on_char '\n' (Trace.to_folded sp)
          |> List.iter (fun line ->
                 if line <> "" then (
                   Buffer.add_string buf query;
                   Buffer.add_char buf ';';
                   Buffer.add_string buf line;
                   Buffer.add_char buf '\n')))
        spans)
    (stored_traces rep);
  Buffer.contents buf
