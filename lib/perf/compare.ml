(** Benchmark-regression detection: match two reports test-by-test and
    classify each delta against a noise threshold.

    A test regresses when [new/base > threshold] and improves when
    [base/new > threshold]; anything in between is noise and stays
    [Unchanged], so shared-runner jitter doesn't page anyone.  Tests
    present on only one side are reported but never fail a comparison —
    suites are allowed to grow. *)

type verdict = Regression | Improvement | Unchanged

type delta = {
  test : string;  (** [suite/name] key *)
  base_ns : float;
  new_ns : float;
  ratio : float;  (** new / base; > 1 is slower *)
  verdict : verdict;
}

type outcome = {
  threshold : float;
  deltas : delta list;  (** tests present in both reports, report order *)
  only_base : string list;  (** tests that disappeared *)
  only_new : string list;  (** tests that appeared *)
}

let default_threshold = 1.5

let classify threshold ratio =
  if ratio > threshold then Regression
  else if ratio > 0. && 1. /. ratio > threshold then Improvement
  else Unchanged

let compare_reports ?(threshold = default_threshold) ?suite
    (base : Bench_result.report) (fresh : Bench_result.report) : outcome =
  if threshold < 1.0 then
    invalid_arg "Compare.compare_reports: threshold must be at least 1.0";
  (* threshold 1.0 is the hard gate: any slowdown at all regresses (and,
     symmetrically, any speedup reports as an improvement) *)
  (* ?suite narrows both sides before matching, so a strict gate on one
     suite (row-vs-vec at 1.0x) ignores unrelated suites entirely *)
  let narrow (rep : Bench_result.report) =
    match suite with
    | None -> rep
    | Some s ->
        {
          rep with
          Bench_result.results =
            List.filter
              (fun (r : Bench_result.result) -> r.Bench_result.suite = s)
              rep.Bench_result.results;
        }
  in
  let base = narrow base and fresh = narrow fresh in
  let keys rep = List.map Bench_result.key rep.Bench_result.results in
  let base_keys = keys base and new_keys = keys fresh in
  let deltas =
    List.filter_map
      (fun (r : Bench_result.result) ->
        let k = Bench_result.key r in
        match Bench_result.find fresh k with
        | None -> None
        | Some r' ->
            let ratio =
              if r.wall_ns_per_run > 0. then
                r'.wall_ns_per_run /. r.wall_ns_per_run
              else if r'.wall_ns_per_run > 0. then infinity
              else 1.
            in
            Some
              {
                test = k;
                base_ns = r.wall_ns_per_run;
                new_ns = r'.wall_ns_per_run;
                ratio;
                verdict = classify threshold ratio;
              })
      base.Bench_result.results
  in
  {
    threshold;
    deltas;
    only_base = List.filter (fun k -> not (List.mem k new_keys)) base_keys;
    only_new = List.filter (fun k -> not (List.mem k base_keys)) new_keys;
  }

let regressions (o : outcome) =
  List.filter (fun d -> d.verdict = Regression) o.deltas

let improvements (o : outcome) =
  List.filter (fun d -> d.verdict = Improvement) o.deltas

let has_regression (o : outcome) = regressions o <> []

(* ---- rendering ---- *)

let ns_pretty (ns : float) : string =
  if ns >= 1e9 then Printf.sprintf "%.3f s" (ns /. 1e9)
  else if ns >= 1e6 then Printf.sprintf "%.3f ms" (ns /. 1e6)
  else if ns >= 1e3 then Printf.sprintf "%.3f us" (ns /. 1e3)
  else Printf.sprintf "%.0f ns" ns

let verdict_tag = function
  | Regression -> "REGRESSION"
  | Improvement -> "improved"
  | Unchanged -> ""

(** The per-test delta table plus a one-line summary. *)
let render (o : outcome) : string =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "%-48s %14s %14s %8s\n" "test" "base" "new" "ratio");
  List.iter
    (fun d ->
      Buffer.add_string buf
        (Printf.sprintf "%-48s %14s %14s %7.2fx  %s\n" d.test
           (ns_pretty d.base_ns) (ns_pretty d.new_ns) d.ratio
           (verdict_tag d.verdict)))
    o.deltas;
  List.iter
    (fun k -> Buffer.add_string buf (Printf.sprintf "%-48s (only in base)\n" k))
    o.only_base;
  List.iter
    (fun k -> Buffer.add_string buf (Printf.sprintf "%-48s (only in new)\n" k))
    o.only_new;
  let r = List.length (regressions o) and i = List.length (improvements o) in
  Buffer.add_string buf
    (Printf.sprintf
       "%d tests compared at threshold %.2fx: %d regression%s, %d \
        improvement%s\n"
       (List.length o.deltas) o.threshold r
       (if r = 1 then "" else "s")
       i
       (if i = 1 then "" else "s"));
  Buffer.contents buf
