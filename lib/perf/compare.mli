(** Benchmark-regression detection between two {!Bench_result.report}s.

    A test regresses when [new/base] exceeds the threshold and improves
    when [base/new] does; anything in between is noise and stays
    [Unchanged].  Tests present on only one side are reported but never
    fail a comparison. *)

type verdict = Regression | Improvement | Unchanged

type delta = {
  test : string;  (** [suite/name] key *)
  base_ns : float;
  new_ns : float;
  ratio : float;  (** new / base; > 1 is slower *)
  verdict : verdict;
}

type outcome = {
  threshold : float;
  deltas : delta list;  (** tests present in both reports, report order *)
  only_base : string list;
  only_new : string list;
}

val default_threshold : float
(** 1.5x. *)

val compare_reports :
  ?threshold:float ->
  ?suite:string ->
  Bench_result.report ->
  Bench_result.report ->
  outcome
(** [suite] restricts the comparison to that suite's results on both
    sides (tests of other suites are neither compared nor reported as
    appearing/disappearing).  A threshold of exactly 1.0 is the hard
    gate: any slowdown regresses.
    @raise Invalid_argument when [threshold < 1.0]. *)

val regressions : outcome -> delta list
val improvements : outcome -> delta list
val has_regression : outcome -> bool

val render : outcome -> string
(** The per-test delta table plus a one-line summary. *)
