(** Environment metadata stamped into every benchmark report, so a perf
    trajectory across commits can tell a real regression from a change of
    machine or toolchain. *)

module Json = Tkr_obs.Json

type t = {
  ocaml_version : string;
  git_sha : string;  (** "unknown" outside a git checkout *)
  dirty : bool;  (** uncommitted changes in the tree the run came from *)
  hostname : string;
  word_size : int;
  os_type : string;
}

(* The current commit without shelling out: resolve .git/HEAD (following
   one level of "ref:" indirection, checking packed-refs for the rest).
   $TKR_GIT_SHA overrides, for builds from exported trees. *)
let detect_git_sha () : string =
  match Sys.getenv_opt "TKR_GIT_SHA" with
  | Some sha when sha <> "" -> sha
  | _ -> (
      let read_line path =
        try
          let ic = open_in path in
          let line = try input_line ic with End_of_file -> "" in
          close_in ic;
          Some (String.trim line)
        with Sys_error _ -> None
      in
      let rec find_git_dir dir depth =
        if depth > 6 then None
        else
          let cand = Filename.concat dir ".git" in
          if Sys.file_exists cand && Sys.is_directory cand then Some cand
          else
            let parent = Filename.dirname dir in
            if parent = dir then None else find_git_dir parent (depth + 1)
      in
      match find_git_dir (Sys.getcwd ()) 0 with
      | None -> "unknown"
      | Some git_dir -> (
          match read_line (Filename.concat git_dir "HEAD") with
          | None -> "unknown"
          | Some head ->
              if String.length head >= 5 && String.sub head 0 5 = "ref: " then
                let ref_name =
                  String.trim (String.sub head 5 (String.length head - 5))
                in
                match read_line (Filename.concat git_dir ref_name) with
                | Some sha when sha <> "" -> sha
                | _ -> (
                    (* packed refs: "<sha> <ref>" lines *)
                    try
                      let ic =
                        open_in (Filename.concat git_dir "packed-refs")
                      in
                      let found = ref "unknown" in
                      (try
                         while true do
                           let line = input_line ic in
                           match String.index_opt line ' ' with
                           | Some i
                             when String.sub line (i + 1)
                                    (String.length line - i - 1)
                                  = ref_name ->
                               found := String.sub line 0 i;
                               raise Exit
                           | _ -> ()
                         done
                       with End_of_file | Exit -> ());
                      close_in ic;
                      !found
                    with Sys_error _ -> "unknown")
              else head))

(* Whether the checkout has uncommitted changes: any output from
   [git status --porcelain].  $TKR_GIT_DIRTY overrides (CI stamps it
   without needing git in the runner image); outside a checkout, or
   without git on PATH, the tree counts as clean. *)
let detect_dirty () : bool =
  match Sys.getenv_opt "TKR_GIT_DIRTY" with
  | Some ("1" | "true" | "yes") -> true
  | Some _ -> false
  | None -> (
      try
        let ic =
          Unix.open_process_in "git status --porcelain 2>/dev/null"
        in
        let line = try Some (input_line ic) with End_of_file -> None in
        ignore (Unix.close_process_in ic);
        line <> None
      with Unix.Unix_error _ | Sys_error _ -> false)

let capture () : t =
  {
    ocaml_version = Sys.ocaml_version;
    git_sha = detect_git_sha ();
    dirty = detect_dirty ();
    hostname = (try Unix.gethostname () with Unix.Unix_error _ -> "unknown");
    word_size = Sys.word_size;
    os_type = Sys.os_type;
  }

let to_json (e : t) : Json.t =
  Json.Obj
    [
      ("ocaml_version", Json.Str e.ocaml_version);
      ("git_sha", Json.Str e.git_sha);
      ("git_dirty", Json.Bool e.dirty);
      ("hostname", Json.Str e.hostname);
      ("word_size", Json.Int e.word_size);
      ("os_type", Json.Str e.os_type);
    ]

let of_json (j : Json.t) : t =
  let str key dflt =
    match Option.bind (Json.member key j) Json.to_string_opt with
    | Some s -> s
    | None -> dflt
  in
  {
    ocaml_version = str "ocaml_version" "unknown";
    git_sha = str "git_sha" "unknown";
    dirty =
      (* pre-PR4 reports have no dirty flag; a clean tree is the
         conservative default for regression comparisons *)
      (match Json.member "git_dirty" j with
      | Some (Json.Bool b) -> b
      | _ -> false);
    hostname = str "hostname" "unknown";
    word_size =
      (match Option.bind (Json.member "word_size" j) Json.to_int_opt with
      | Some w -> w
      | None -> 0);
    os_type = str "os_type" "unknown";
  }

let pp ppf (e : t) =
  Format.fprintf ppf "ocaml %s | git %s%s | %s | %d-bit %s" e.ocaml_version
    (if String.length e.git_sha > 12 then String.sub e.git_sha 0 12
     else e.git_sha)
    (if e.dirty then "+dirty" else "")
    e.hostname e.word_size e.os_type
