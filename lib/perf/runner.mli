(** Wall-clock measurement harness for the quick bench suites. *)

type sample = {
  wall_ns : float;
  minor_words : float;
  major_words : float;
  minor_collections : int;
  major_collections : int;
}

val sample_once : (unit -> 'a) -> sample

val measure : ?runs:int -> (unit -> 'a) -> sample
(** A full major collection, one warmup run, then [runs] (default 3)
    timed samples; reports the median-by-wall-time sample.
    @raise Invalid_argument when [runs < 1]. *)

val gc_counters : sample -> (string * float) list
(** The sample's GC numbers as schema counters
    ([gc_minor_words], [gc_major_words], [gc_minor_collections],
    [gc_major_collections]). *)

val percentile : float array -> float -> float
(** Nearest-rank quantile of a pre-sorted array ([percentile lat 0.95]);
    [0.0] on an empty array. *)

val provenance_warning : label:string -> path:string -> Env.t -> string option
(** The dirty-tree caveat for a report: [Some warning] when [env] says the
    report was recorded on a dirty tree.  Shared by [bench compare] and
    the [--append] paths so provenance is worded identically everywhere. *)

val refresh_env : path:string -> Env.t -> Env.t * string option
(** The environment to stamp into a report being appended to in place:
    always the current {!Env.capture}, plus a warning when it differs
    from the file's recorded environment (an appended suite measured now
    must not inherit a stale git SHA / dirty flag). *)
