(** A small wall-clock measurement harness for the quick bench suites
    (the CLI runner and the experiment binary): one warmup, then the
    median of N timed runs, with the GC/allocation delta of the median
    sample recorded as counters. *)

module Clock = Tkr_obs.Clock

type sample = {
  wall_ns : float;
  minor_words : float;
  major_words : float;
  minor_collections : int;
  major_collections : int;
}

let sample_once (f : unit -> 'a) : sample =
  (* [Gc.minor_words ()] is precise between collections, where
     [quick_stat]'s minor_words only updates at collection time *)
  let mw0 = Gc.minor_words () in
  let g0 = Gc.quick_stat () in
  let t0 = Clock.now_ns () in
  ignore (f ());
  let t1 = Clock.now_ns () in
  let g1 = Gc.quick_stat () in
  let mw1 = Gc.minor_words () in
  {
    wall_ns = Int64.to_float (Int64.sub t1 t0);
    minor_words = mw1 -. mw0;
    major_words = g1.major_words -. g0.major_words;
    minor_collections = g1.minor_collections - g0.minor_collections;
    major_collections = g1.major_collections - g0.major_collections;
  }

(** [measure ~runs f]: a full major collection and one warmup run first
    (so earlier measurements don't bleed GC debt into this one), then
    [runs] timed samples; reports the median-by-wall-time sample.
    @raise Invalid_argument when [runs < 1]. *)
let measure ?(runs = 3) (f : unit -> 'a) : sample =
  if runs < 1 then invalid_arg "Runner.measure: runs must be positive";
  Gc.full_major ();
  ignore (f ());
  let samples =
    List.sort
      (fun a b -> Float.compare a.wall_ns b.wall_ns)
      (List.init runs (fun _ -> sample_once f))
  in
  List.nth samples ((runs - 1) / 2)

(** The sample's GC numbers as schema counters, ready to merge into a
    {!Bench_result.result}. *)
let gc_counters (s : sample) : (string * float) list =
  [
    ("gc_minor_words", s.minor_words);
    ("gc_major_words", s.major_words);
    ("gc_minor_collections", float_of_int s.minor_collections);
    ("gc_major_collections", float_of_int s.major_collections);
  ]

(** Nearest-rank quantile of a pre-sorted latency array; [0.0] on an
    empty array.  Shared by the serve and replay benches so their
    p50/p95/p99 counters are computed identically. *)
let percentile (sorted : float array) (q : float) : float =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else sorted.(min (n - 1) (int_of_float ((q *. float_of_int (n - 1)) +. 0.5)))

(* ---- report provenance ---- *)

(** [provenance_warning ~label ~path env]: the warning [bench compare]
    prints for a report recorded on a dirty tree — such a report did not
    come from the commit its SHA names.  Shared with the [--append]
    paths so every consumer words the caveat identically. *)
let provenance_warning ~(label : string) ~(path : string) (env : Env.t) :
    string option =
  if env.Env.dirty then
    Some
      (Printf.sprintf
         "%s report %s was recorded on a dirty tree (git %s): its numbers \
          may not match any commit" label path env.Env.git_sha)
  else None

(** [refresh_env ~path env]: the environment to stamp into a report that
    is being appended to in place.  An appended suite was measured {e
    now}, so the merged report must carry the current environment, not
    the file's original one (which may name a different commit entirely);
    when the two differ, the returned warning says what changed so the
    baseline's provenance is visible at append time, exactly like
    {!provenance_warning} makes it visible at compare time. *)
let refresh_env ~(path : string) (old_env : Env.t) : Env.t * string option =
  let cur = Env.capture () in
  let pp_env (e : Env.t) =
    Printf.sprintf "git %s%s" e.Env.git_sha (if e.Env.dirty then "+dirty" else "")
  in
  let warn =
    if old_env.Env.git_sha <> cur.Env.git_sha || old_env.Env.dirty <> cur.Env.dirty
    then
      Some
        (Printf.sprintf
           "report %s was recorded at %s; re-stamping with the current %s \
            (its other suites' numbers still come from the old tree)"
           path (pp_env old_env) (pp_env cur))
    else None
  in
  (cur, warn)
