(** The canonical benchmark-result schema shared by every perf producer
    (bechamel bench, experiment binary, [tkr_cli bench run]) and consumer
    ([bench compare] / [bench export] / CI).  The perf trajectory is the
    sequence of these files committed at the repo root as
    [BENCH_PR<n>.json]. *)

val schema_version : int

type result = {
  suite : string;  (** group, e.g. "table3-emp" *)
  name : string;  (** test inside the suite, e.g. "join-1-seq" *)
  wall_ns_per_run : float;
  runs : int;  (** samples behind [wall_ns_per_run] *)
  counters : (string * float) list;
      (** operator / GC counters, e.g. rows_out, gc_minor_words *)
}

type report = {
  source : string;  (** producing binary, e.g. "bench/main.ml" *)
  env : Env.t;
  results : result list;
  extra : (string * Tkr_obs.Json.t) list;
      (** passthrough payloads (operator traces, notes) *)
}

val result :
  ?counters:(string * float) list ->
  suite:string ->
  name:string ->
  runs:int ->
  float ->
  result

val make :
  ?env:Env.t ->
  ?extra:(string * Tkr_obs.Json.t) list ->
  source:string ->
  result list ->
  report
(** [env] defaults to {!Env.capture}. *)

val key : result -> string
(** [suite/name], the key tests are matched on across reports. *)

val find : report -> string -> result option

exception Invalid of string
(** Schema violations when reading. *)

val to_json : report -> Tkr_obs.Json.t
val of_json : Tkr_obs.Json.t -> report

val write : string -> report -> unit
val read : string -> report
(** @raise Invalid on schema violations,
    @raise Tkr_obs.Json.Parse_error on malformed JSON. *)

val pr_of_filename : string -> int option
(** [BENCH_PR7.json -> Some 7]. *)

val filename_of_pr : int -> string
val latest_pr : ?dir:string -> unit -> int option

val default_filename : ?dir:string -> unit -> string
(** [$TKR_BENCH_PR] when set, else one past the highest
    [BENCH_PR<n>.json] in [dir] — fresh runs never silently overwrite
    the committed trajectory. *)

val pp_report : Format.formatter -> report -> unit
