(** Environment metadata stamped into every benchmark report. *)

type t = {
  ocaml_version : string;
  git_sha : string;  (** "unknown" outside a git checkout *)
  dirty : bool;  (** uncommitted changes in the tree the run came from *)
  hostname : string;
  word_size : int;
  os_type : string;
}

val capture : unit -> t
(** The current process environment.  The git SHA is resolved from
    [.git/HEAD] (searching upward from the cwd), with [$TKR_GIT_SHA] as
    an override for builds from exported trees.  [dirty] comes from
    [git status --porcelain] ([$TKR_GIT_DIRTY] overrides; clean when git
    is unavailable) — a report stamped [git <sha>+dirty] did not come
    from the commit its SHA names, which {!Tkr_perf.Compare} consumers
    should surface before trusting a regression verdict. *)

val to_json : t -> Tkr_obs.Json.t
val of_json : Tkr_obs.Json.t -> t
val pp : Format.formatter -> t -> unit
