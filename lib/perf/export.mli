(** Export a stored benchmark report to external tooling. *)

val to_openmetrics : Bench_result.report -> string
(** The report as one OpenMetrics document:
    [tkr_bench_wall_ns_per_run{suite,test}], [tkr_bench_runs],
    [tkr_bench_counter{...,counter}] gauges and a [tkr_bench_env_info]
    metadata gauge, terminated by [# EOF].  Reports that store operator
    traces with pool attribution additionally get
    [tkr_bench_par{query,stat}] (stat one of jobs/chunks/steals/merge_ns)
    and [tkr_bench_par_domain_chunks{query,domain}] gauges. *)

val to_folded : Bench_result.report -> string
(** Stored operator traces as flamegraph-compatible folded stacks
    ([query;operator;... <self-ns>] lines); empty when the report has no
    [operator_traces]. *)
