(** The canonical benchmark-result schema — the one file format every
    perf producer in the repo (bechamel bench, experiment binary,
    [tkr_cli bench run]) writes and every consumer ([bench compare],
    [bench export], CI) reads.

    {v
    { "schema_version": 1,
      "source": "bench/main.ml",
      "env": { "ocaml_version": ..., "git_sha": ..., ... },
      "results": [
        { "suite": "table3-emp", "name": "join-1-seq",
          "wall_ns_per_run": 123456.0, "runs": 3,
          "counters": { "rows_out": 42, "gc_minor_words": 1.0e6 } },
        ... ],
      "operator_traces": [ ... ] }          (optional extras)
    v}

    The perf trajectory is the sequence of these files committed at the
    repo root as [BENCH_PR<n>.json]. *)

module Json = Tkr_obs.Json

let schema_version = 1

type result = {
  suite : string;  (** group, e.g. "table3-emp" *)
  name : string;  (** test inside the suite, e.g. "join-1-seq" *)
  wall_ns_per_run : float;
  runs : int;  (** samples behind [wall_ns_per_run] *)
  counters : (string * float) list;
      (** operator / GC counters, e.g. rows_out, gc_minor_words *)
}

type report = {
  source : string;  (** producing binary, e.g. "bench/main.ml" *)
  env : Env.t;
  results : result list;
  extra : (string * Json.t) list;
      (** passthrough payloads (operator traces, notes) *)
}

let result ?(counters = []) ~suite ~name ~runs wall_ns_per_run =
  { suite; name; wall_ns_per_run; runs; counters }

let make ?(env = Env.capture ()) ?(extra = []) ~source results =
  { source; env; results; extra }

(** [suite/name], the key tests are matched on across reports. *)
let key (r : result) = r.suite ^ "/" ^ r.name

let find (rep : report) k = List.find_opt (fun r -> key r = k) rep.results

(* ---- JSON ---- *)

let result_to_json (r : result) : Json.t =
  Json.Obj
    [
      ("suite", Json.Str r.suite);
      ("name", Json.Str r.name);
      ("wall_ns_per_run", Json.Float r.wall_ns_per_run);
      ("runs", Json.Int r.runs);
      ( "counters",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) r.counters) );
    ]

let to_json (rep : report) : Json.t =
  Json.Obj
    ([
       ("schema_version", Json.Int schema_version);
       ("source", Json.Str rep.source);
       ("env", Env.to_json rep.env);
       ("results", Json.List (List.map result_to_json rep.results));
     ]
    @ rep.extra)

exception Invalid of string

let result_of_json (j : Json.t) : result =
  let str k =
    match Option.bind (Json.member k j) Json.to_string_opt with
    | Some s -> s
    | None -> raise (Invalid (Printf.sprintf "result: missing field %S" k))
  in
  {
    suite = str "suite";
    name = str "name";
    wall_ns_per_run =
      (match Option.bind (Json.member "wall_ns_per_run" j) Json.to_float_opt with
      | Some f -> f
      | None -> raise (Invalid "result: missing wall_ns_per_run"));
    runs =
      (match Option.bind (Json.member "runs" j) Json.to_int_opt with
      | Some n -> n
      | None -> 1);
    counters =
      (match Json.member "counters" j with
      | Some (Json.Obj fields) ->
          List.filter_map
            (fun (k, v) ->
              Option.map (fun f -> (k, f)) (Json.to_float_opt v))
            fields
      | _ -> []);
  }

let known_fields = [ "schema_version"; "source"; "env"; "results" ]

let of_json (j : Json.t) : report =
  (match Option.bind (Json.member "schema_version" j) Json.to_int_opt with
  | Some v when v = schema_version -> ()
  | Some v ->
      raise
        (Invalid
           (Printf.sprintf "unsupported schema_version %d (expected %d)" v
              schema_version))
  | None -> raise (Invalid "missing schema_version"));
  {
    source =
      (match Option.bind (Json.member "source" j) Json.to_string_opt with
      | Some s -> s
      | None -> "unknown");
    env =
      (match Json.member "env" j with
      | Some e -> Env.of_json e
      | None -> raise (Invalid "missing env"));
    results =
      (match Json.member "results" j with
      | Some (Json.List items) -> List.map result_of_json items
      | _ -> raise (Invalid "missing results"));
    extra =
      (match j with
      | Json.Obj fields ->
          List.filter (fun (k, _) -> not (List.mem k known_fields)) fields
      | _ -> []);
  }

(* ---- files ---- *)

let write path (rep : report) =
  let oc = open_out path in
  output_string oc (Json.to_string (to_json rep));
  output_char oc '\n';
  close_out oc

let read path : report =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  of_json (Json.of_string (String.trim s))

(* ---- trajectory naming ---- *)

let bench_re_prefix = "BENCH_PR"
let bench_suffix = ".json"

(** PR number of a trajectory filename: [BENCH_PR7.json] -> [Some 7]. *)
let pr_of_filename (f : string) : int option =
  let lp = String.length bench_re_prefix and ls = String.length bench_suffix in
  let n = String.length f in
  if
    n > lp + ls
    && String.sub f 0 lp = bench_re_prefix
    && String.sub f (n - ls) ls = bench_suffix
  then int_of_string_opt (String.sub f lp (n - lp - ls))
  else None

let filename_of_pr (pr : int) = Printf.sprintf "BENCH_PR%d.json" pr

(** Highest committed trajectory number in [dir] (default: cwd). *)
let latest_pr ?(dir = ".") () : int option =
  match Sys.readdir dir with
  | exception Sys_error _ -> None
  | files ->
      Array.fold_left
        (fun acc f ->
          match pr_of_filename f with
          | Some n -> Some (match acc with Some m -> max m n | None -> n)
          | None -> acc)
        None files

(** The default output name of a fresh bench run: [$TKR_BENCH_PR] when
    set, else one past the highest [BENCH_PR<n>.json] already in [dir]
    ([BENCH_PR0.json] in an empty tree) — so reruns never silently
    overwrite the committed trajectory. *)
let default_filename ?(dir = ".") () : string =
  match Option.bind (Sys.getenv_opt "TKR_BENCH_PR") int_of_string_opt with
  | Some pr -> filename_of_pr pr
  | None ->
      filename_of_pr
        (match latest_pr ~dir () with Some n -> n + 1 | None -> 0)

(* ---- rendering ---- *)

let pp_report ppf (rep : report) =
  Format.fprintf ppf "source: %s@,env: %a@,%d results@," rep.source Env.pp
    rep.env
    (List.length rep.results);
  List.iter
    (fun r ->
      Format.fprintf ppf "  %-48s %12.1f ns/run  (%d runs)@," (key r)
        r.wall_ns_per_run r.runs)
    rep.results
