(** The database middleware of Section 9: snapshot semantics as a SQL
    language feature.

    A query enclosed in [SEQ VT (...)] is interpreted under snapshot
    semantics: it is analyzed against the {e data} schemas of the period
    tables it references (the period attributes are implicit), rewritten
    with REWR (Fig. 4) and executed as a plain multiset query over the
    period encoding.  The result is a period table whose period is exposed
    as the trailing [vt_begin]/[vt_end] columns.

    Queries without [SEQ VT] run as ordinary SQL (period attributes are
    then visible as regular columns).  CREATE TABLE ... PERIOD(b, e),
    INSERT and DROP TABLE are provided for examples and the CLI. *)

open Tkr_relation
module Table = Tkr_engine.Table
module Database = Tkr_engine.Database
module Exec = Tkr_engine.Exec
module Ast = Tkr_sql.Ast
module Parser = Tkr_sql.Parser
module Analyzer = Tkr_sql.Analyzer
module Rewriter = Tkr_sqlenc.Rewriter
module Trace = Tkr_obs.Trace
module Clock = Tkr_obs.Clock
module Json = Tkr_obs.Json
module Metrics = Tkr_obs.Metrics
module Diagnostic = Tkr_check.Diagnostic
module Check = Tkr_check.Check
module Lint = Tkr_check.Lint
module Absint = Tkr_check.Absint
module Pool = Tkr_par.Pool
module Rwlock = Tkr_par.Rwlock

exception Error of Diagnostic.t

exception Rejected of Diagnostic.t list
(** The static [check] phase found errors (or, in strict mode, warnings);
    the statement was not executed. *)

let err ?pos code fmt =
  Format.kasprintf
    (fun s -> raise (Error (Diagnostic.v ?pos code "%s" s)))
    fmt

type backend = Interpreted | Compiled

type engine = Row | Vec

(* ---- observability: per-statement phase timings ---- *)

(** Cumulative phase timings of one prepared statement: the preparation
    pipeline (parse → analyze → rewrite → optimize) is timed once, the
    execute phase accumulates over every {!run_prepared}. *)
type phase_stats = {
  mutable parse_ns : int64;
  mutable analyze_ns : int64;
  mutable check_ns : int64;  (** static analysis (Tkr_check), all stages *)
  mutable rewrite_ns : int64;
  mutable optimize_ns : int64;
  mutable runs : int;
  mutable execute_ns : int64;  (** cumulative over [runs] executions *)
  mutable last_rows : int;  (** output cardinality of the last run *)
}

let fresh_stats () =
  {
    parse_ns = 0L;
    analyze_ns = 0L;
    check_ns = 0L;
    rewrite_ns = 0L;
    optimize_ns = 0L;
    runs = 0;
    execute_ns = 0L;
    last_rows = 0;
  }

let add_stats ~into:(a : phase_stats) (b : phase_stats) =
  a.parse_ns <- Int64.add a.parse_ns b.parse_ns;
  a.analyze_ns <- Int64.add a.analyze_ns b.analyze_ns;
  a.check_ns <- Int64.add a.check_ns b.check_ns;
  a.rewrite_ns <- Int64.add a.rewrite_ns b.rewrite_ns;
  a.optimize_ns <- Int64.add a.optimize_ns b.optimize_ns

let pp_phase_stats ppf (s : phase_stats) =
  let ms = Clock.ns_to_ms in
  Format.fprintf ppf
    "parse %.3f ms | analyze %.3f ms | check %.3f ms | rewrite %.3f ms | \
     optimize %.3f ms | execute %.3f ms over %d run%s"
    (ms s.parse_ns) (ms s.analyze_ns) (ms s.check_ns) (ms s.rewrite_ns)
    (ms s.optimize_ns) (ms s.execute_ns) s.runs
    (if s.runs = 1 then "" else "s")

let phase_stats_json (s : phase_stats) : Json.t =
  Json.Obj
    [
      ("parse_ns", Json.Int (Int64.to_int s.parse_ns));
      ("analyze_ns", Json.Int (Int64.to_int s.analyze_ns));
      ("check_ns", Json.Int (Int64.to_int s.check_ns));
      ("rewrite_ns", Json.Int (Int64.to_int s.rewrite_ns));
      ("optimize_ns", Json.Int (Int64.to_int s.optimize_ns));
      ("runs", Json.Int s.runs);
      ("execute_ns", Json.Int (Int64.to_int s.execute_ns));
      ("last_rows", Json.Int s.last_rows);
    ]

type t = {
  db : Database.t;
  mutable options : Rewriter.options;
  mutable optimize : bool;  (** run the cost-based join-order optimizer *)
  mutable backend : backend;
      (** execute plans by AST interpretation or as compiled closures *)
  mutable engine : engine;
      (** row-at-a-time ({!Row}, the oracle) or columnar batch-at-a-time
          ({!Vec}) execution; the vectorized engine reproduces the row
          engine's output byte-for-byte and supersedes [backend] *)
  mutable strict : bool;
      (** --Werror: the check phase rejects on warnings too *)
  mutable prune : bool;
      (** apply {!Tkr_check.Absint}-driven plan pruning (drop provably
          empty subplans and provably idempotent Distinct/Coalesce);
          byte-identity-preserving, on by default *)
  mutable index : bool;
      (** answer index-answerable period-table selections and joins
          through the temporal interval index ({!Tkr_idx}); output is
          byte-identical to the scan path, on by default *)
  mutable pool : Pool.t option;
      (** worker pool for the temporal operators; [None] = the serial
          engine, whose output parallel plans reproduce byte-for-byte *)
  insert_order : (string, int list) Hashtbl.t;
      (** CREATE TABLE column order -> stored order (period cols last) *)
  totals : phase_stats;
      (** phase timings accumulated over every statement this middleware
          prepared or ran *)
  metrics : Metrics.t;
      (** per-middleware registry: execute-latency histogram
          ([execute_us]), output-cardinality histogram ([rows_out]) and a
          statement counter, feeding the EXPLAIN ANALYZE quantile line
          and the OpenMetrics exporter *)
  lock : Mutex.t;
      (** guards the cumulative stats ([totals], per-prepared
          [phase_stats]) against concurrent callers *)
  rw : Rwlock.t;
      (** catalog/settings lock: queries hold the (reentrant) read side,
          DDL/DML and settings changes the exclusive write side — many
          queries execute concurrently, mutations are serialized against
          everything *)
  settings_epoch : int Atomic.t;
      (** bumped by every {!write_locked} section; together with
          {!Database.generation} it forms {!epoch}, the staleness signal
          for prepared statements cached outside the middleware *)
  pool_lock : Mutex.t;
      (** serializes pooled executions: a {!Pool.t} accepts one batch
          submitter at a time, so prepared statements that captured a
          pool run one by one (serial statements are unaffected) *)
  mutable epoch_hook : (int -> unit) option;
      (** observer notified with the new {!epoch} after every completed
          {!write_locked} section — the query server's invalidation
          telemetry *)
}

let locked mu f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

let create ?(options = Rewriter.optimized) ?(optimize = true)
    ?(prune = true) ?(index = true) ?(backend = Interpreted) ?(engine = Row)
    ?(strict = false) ?(parallelism = 1) ?(db = Database.create ()) () =
  {
    db;
    options;
    optimize;
    backend;
    engine;
    strict;
    prune;
    index;
    pool = (if parallelism > 1 then Some (Pool.create ~jobs:parallelism ()) else None);
    insert_order = Hashtbl.create 8;
    totals = fresh_stats ();
    metrics = Metrics.create ();
    lock = Mutex.create ();
    rw = Rwlock.create ();
    settings_epoch = Atomic.make 0;
    pool_lock = Mutex.create ();
    epoch_hook = None;
  }

let read_locked m f = Rwlock.with_read m.rw f

(* both summands are monotone non-decreasing, so the sum changes whenever
   either does; reading it under [read_locked] excludes writers, making
   (epoch read, prepare, execute) atomic with respect to mutations *)
let epoch m = Atomic.get m.settings_epoch + Database.generation m.db

let set_epoch_hook m hook = m.epoch_hook <- hook

let write_locked m f =
  Rwlock.with_write m.rw (fun () ->
      (* bump first: even if [f] raises mid-mutation, cached plans are
         (conservatively) treated as stale *)
      Atomic.incr m.settings_epoch;
      let r = f () in
      (match m.epoch_hook with Some h -> h (epoch m) | None -> ());
      r)

let totals m = m.totals
let totals_report m = locked m.lock (fun () -> Format.asprintf "%a" pp_phase_stats m.totals)
let metrics m = m.metrics

let set_optimize m b = write_locked m (fun () -> m.optimize <- b)
let set_prune m b = write_locked m (fun () -> m.prune <- b)
let prune m = m.prune
let set_index m b = write_locked m (fun () -> m.index <- b)
let index_enabled m = m.index
let set_backend m b = write_locked m (fun () -> m.backend <- b)
let set_engine m e = write_locked m (fun () -> m.engine <- e)
let engine m = m.engine
let set_strict m b = write_locked m (fun () -> m.strict <- b)
let strict m = m.strict

let parallelism m =
  read_locked m (fun () ->
      match m.pool with Some p -> Pool.jobs p | None -> 1)

(* statements prepared earlier keep the pool they captured; a shut-down
   pool still executes batches correctly (the submitting domain drains
   them alone), so replacing the pool degrades old statements to serial
   execution instead of breaking them *)
let set_parallelism m n =
  write_locked m @@ fun () ->
  (match m.pool with Some p -> Pool.shutdown p | None -> ());
  m.pool <- (if n > 1 then Some (Pool.create ~jobs:n ()) else None)

let shutdown m =
  write_locked m @@ fun () ->
  (match m.pool with Some p -> Pool.shutdown p | None -> ());
  m.pool <- None

let database m = m.db
let set_options m options = write_locked m (fun () -> m.options <- options)
let options m = m.options

(* ---- catalogs ---- *)

let snapshot_catalog m : Analyzer.catalog =
  {
    cat_schema =
      (fun name ->
        if not (Database.mem m.db name) then raise (Schema.Unknown name);
        if not (Database.is_period m.db name) then
          err "TKR020"
            "table %s is not a period table; it cannot appear inside SEQ VT"
            name;
        Database.data_schema_of m.db name);
  }

let plain_catalog m : Analyzer.catalog =
  { cat_schema = (fun name -> Database.schema_of m.db name) }

(* ---- prepared queries ---- *)

type prepared = {
  plan : Algebra.t;  (** ready to execute against the engine *)
  exec : Trace.t -> Database.t -> Table.t;
      (** the plan, possibly compiled to closures (see {!backend});
          applied to a trace collector ({!Trace.disabled} when not
          observing) *)
  out_schema : Schema.t;  (** user-visible output schema *)
  snapshot : bool;
  as_of : int option;
      (** timeslice: return the snapshot at this point, without period
          columns (SEQ VT AS OF t) *)
  order_by : (int * bool) list;
  limit : int option;
  stats : phase_stats;  (** phase timings; execute accumulates per run *)
  diags : Diagnostic.t list;
      (** diagnostics of the static [check] phase (warnings only: a
          statement with errors raises {!Rejected} instead) *)
  analysis : string;
      (** {!Tkr_check.Absint} rendering of the final plan with the
          inferred per-operator facts (time windows, emptiness,
          duplicate-freeness), shown by [EXPLAIN] *)
  access : (string * string) list;
      (** the planner's access-path decision per stored period table read
          through a selection or a no-equi-key join —
          [(table, "index" | "scan")] in plan order, shown by [EXPLAIN];
          empty when the plan touches no such read *)
  tables : string list;
      (** base tables the final plan reads, sorted and deduplicated —
          with {!Tkr_engine.Database.version} these form the dependency
          set of a snapshot-aware result cache entry *)
  pooled : bool;
      (** the exec closure captured a worker pool; pooled runs are
          serialized on the middleware's pool lock *)
}

let make_exec m plan : Trace.t -> Database.t -> Table.t =
  (* the pool and index flag are captured at prepare time, like the
     backend *)
  let pool = m.pool in
  let use_index = m.index in
  match (m.engine, m.backend) with
  | Vec, _ ->
      (* the vectorized engine is serial; the pool never applies *)
      fun obs db -> Tkr_vec.Vexec.eval ~obs ~use_index db plan
  | Row, Interpreted -> fun obs db -> Exec.eval ~obs ~use_index ?pool db plan
  | Row, Compiled ->
      Tkr_engine.Compiled.compile ?pool ~use_index
        ~lookup:(fun n -> Database.schema_of m.db n)
        plan

(* time one preparation phase into a [phase_stats] cell *)
let phase (set : int64 -> unit) (f : unit -> 'a) : 'a =
  let ns, r = Clock.elapsed f in
  set ns;
  r

let rec collect_rels acc (q : Algebra.t) =
  match q with
  | Algebra.Rel n -> n :: acc
  | ConstRel _ -> acc
  | Select (_, q) | Project (_, q) | Agg (_, _, q) | Distinct q | Coalesce q ->
      collect_rels acc q
  | Join (_, l, r) | Union (l, r) | Diff (l, r) | Split (_, l, r) ->
      collect_rels (collect_rels acc l) r
  | Split_agg sa -> collect_rels acc sa.sa_child

let vt_begin = "vt_begin"
let vt_end = "vt_end"

(* Set semantics ([SEQ VT SET]): deduplicate every snapshot.  It suffices
   to dedup the operators that can create or preserve duplicates — base
   tables, projections and unions; joins and selections of set-semantics
   inputs are set-semantics; both sides of a difference being sets makes
   the N-monus coincide with set difference; aggregation/distinct see the
   deduplicated input. *)
let rec setify (q : Algebra.t) : Algebra.t =
  match q with
  | Algebra.Rel _ | ConstRel _ -> Algebra.Distinct q
  | Select (p, q0) -> Select (p, setify q0)
  | Project (ps, q0) -> Distinct (Project (ps, setify q0))
  | Join (p, l, r) -> Join (p, setify l, setify r)
  | Union (l, r) -> Distinct (Union (setify l, setify r))
  | Diff (l, r) -> Diff (setify l, setify r)
  | Agg (g, a, q0) -> Agg (g, a, setify q0)
  | Distinct q0 -> Distinct (setify q0)
  | Coalesce _ | Split _ | Split_agg _ ->
      err "TKR201" "setify: physical operator in logical query"

(* plan-level diagnostics lose the AST once analyzed: stamp them with the
   statement's origin position so CHECK/LINT output stays clickable *)
let stamp_pos (origin : Diagnostic.pos option) (ds : Diagnostic.t list) :
    Diagnostic.t list =
  match origin with
  | None -> ds
  | Some _ ->
      List.map
        (fun (d : Diagnostic.t) ->
          match d.Diagnostic.pos with
          | Some _ -> d
          | None -> { d with Diagnostic.pos = origin })
        ds

(* the analysis pass re-runs per check stage (analyzed / optimized /
   physical plans differ in shape but describe one statement): keep only
   the first stage's instance of each TKR4xx code *)
let drop_dup4 ~(prior : Diagnostic.t list) (ds : Diagnostic.t list) :
    Diagnostic.t list =
  let is4 (d : Diagnostic.t) =
    String.length d.Diagnostic.code >= 4
    && String.equal (String.sub d.Diagnostic.code 0 4) "TKR4"
  in
  List.filter
    (fun d ->
      (not (is4 d))
      || not
           (List.exists
              (fun (p : Diagnostic.t) ->
                String.equal p.Diagnostic.code d.Diagnostic.code)
              prior))
    ds

let prepare_statement_unlocked m (stmt : Ast.statement) : prepared =
  match stmt with
  | Ast.Query { q; order_by; limit; origin } -> (
      let stats = fresh_stats () in
      let finish (p : prepared) =
        locked m.lock (fun () -> add_stats ~into:m.totals p.stats);
        p
      in
      (* one stage of the obs-timed static [check] phase: accumulate
         elapsed time, reject right away on errors (or warnings when
         strict) so later phases never see an invalid plan *)
      let checked (f : unit -> Diagnostic.t list) : Diagnostic.t list =
        let ns, ds = Clock.elapsed f in
        stats.check_ns <- Int64.add stats.check_ns ns;
        match Check.verdict ~werror:m.strict (stamp_pos origin ds) with
        | Ok ds -> ds
        | Error ds -> raise (Rejected (Diagnostic.sort ds))
      in
      let kind =
        match q with
        | Ast.Seq_vt inner -> `Snapshot (inner, None, false)
        | Ast.Seq_vt_as_of (t, inner) -> `Snapshot (inner, Some t, false)
        | Ast.Seq_vt_set inner -> `Snapshot (inner, None, true)
        | q -> `Plain q
      in
      match kind with
      | `Snapshot (inner, as_of, set_mode) ->
          let analyzed =
            phase (fun ns -> stats.analyze_ns <- ns) @@ fun () ->
            let analyzed = Analyzer.analyze_query (snapshot_catalog m) inner in
            let analyzed =
              if set_mode then
                { analyzed with algebra = setify analyzed.algebra }
              else analyzed
            in
            (* every base relation must be a period table *)
            List.iter
              (fun n ->
                if not (Database.is_period m.db n) then
                  err "TKR020" "table %s inside SEQ VT is not a period table" n)
              (collect_rels [] analyzed.algebra);
            analyzed
          in
          let tmin, tmax = Database.time_bounds m.db in
          let lookup n = Database.data_schema_of m.db n in
          let data_lookup n =
            if Database.mem m.db n then Some (Database.data_schema_of m.db n)
            else None
          in
          (* check: types + logical invariants on the analyzed plan *)
          let diags_analyzed =
            checked @@ fun () ->
            Check.logical ~lookup:data_lookup analyzed.algebra
            @ Lint.plan Lint.middleware analyzed.algebra
          in
          let logical =
            phase (fun ns -> stats.optimize_ns <- ns) @@ fun () ->
            let logical = Simplify.simplify analyzed.algebra in
            if m.optimize then
              let prune_hook =
                if m.prune then Some (Absint.prune (Absint.env data_lookup))
                else None
              in
              Tkr_engine.Optimizer.optimize ?prune:prune_hook
                ~stats:
                  {
                    card =
                      (fun n -> Tkr_engine.Table.cardinality (Database.find m.db n));
                  }
                ~lookup logical
            else logical
          in
          (* check: the optimizer's semantics-preservation claim as a
             machine-checked postcondition *)
          let diags_optimized =
            drop_dup4 ~prior:diags_analyzed
              (checked @@ fun () -> Check.logical ~lookup:data_lookup logical)
          in
          let plan =
            phase (fun ns -> stats.rewrite_ns <- ns) @@ fun () ->
            let plan =
              Simplify.simplify
                (Rewriter.rewrite ~options:m.options ~tmin ~tmax ~lookup logical)
            in
            let plan =
              match as_of with
              | None -> plan
              | Some t ->
                (* τ_T commutes with queries (Thm 6.3/7.2): restricting
                   every base table to the tuples alive at T computes the
                   same snapshot far more cheaply *)
                  let rec push (q : Algebra.t) : Algebra.t =
                    match q with
                    | Algebra.Rel n ->
                        let arity = Schema.arity (Database.schema_of m.db n) in
                        let alive =
                          Expr.(
                            And
                              ( Cmp (Le, Col (arity - 2), Const (Value.Int t)),
                                Cmp (Lt, Const (Value.Int t), Col (arity - 1))
                              ))
                        in
                        Algebra.Select (alive, q)
                    | ConstRel _ -> q
                    | Select (p, q) -> Select (p, push q)
                    | Project (ps, q) -> Project (ps, push q)
                    | Join (p, l, r) -> Join (p, push l, push r)
                    | Union (l, r) -> Union (push l, push r)
                    | Diff (l, r) -> Diff (push l, push r)
                    | Agg (g, a, q) -> Agg (g, a, push q)
                    | Distinct q -> Distinct (push q)
                    | Coalesce q -> Coalesce (push q)
                    | Split (g, l, r) ->
                        if l == r then
                          let l' = push l in
                          Split (g, l', l')
                        else Split (g, push l, push r)
                    | Split_agg sa ->
                        Split_agg { sa with sa_child = push sa.sa_child }
                  in
                  push plan
            in
            (* fuse selection stacks (user filter over the AS OF aliveness
               pushdown) into single conjunctions — the shape the index
               probe recognizer works on.  Unconditional: the plan never
               depends on the index flag. *)
            Tkr_engine.Optimizer.merge_selects plan
          in
          (* check: period-encoding invariants on the rewritten plan, with
             the abstract interpreter seeded from the period catalog and
             the database time bounds *)
          let enc_lookup n =
            if Database.mem m.db n then Some (Database.schema_of m.db n)
            else None
          in
          let env_phys =
            Absint.env ~temporal:true
              ~is_period:(fun n -> Database.is_period m.db n)
              ~time_bounds:(tmin, tmax) enc_lookup
          in
          let diags_physical =
            drop_dup4 ~prior:(diags_analyzed @ diags_optimized)
              ( checked @@ fun () ->
                Check.physical ~absint:env_phys ~lookup:enc_lookup plan )
          in
          (* a timeslice point outside the stored bounds is provably
             empty: the bounds are widened to cover every stored period,
             so no row can be alive there.  Decided on the pre-prune plan
             — pruning replaces exactly these provably-empty reads with
             constants, which must not silence the warning. *)
          let diags_timeslice =
            match as_of with
            | Some t
              when (t < tmin || t >= tmax) && collect_rels [] plan <> [] ->
                checked @@ fun () ->
                [
                  Diagnostic.warning "TKR408"
                    "AS OF %d lies outside the stored time bounds [%d, %d): \
                     the timeslice is provably empty"
                    t tmin tmax;
                ]
            | _ -> []
          in
          let plan = if m.prune then Absint.prune env_phys plan else plan in
          let diags =
            List.sort_uniq compare
              (diags_analyzed @ diags_optimized @ diags_physical
             @ diags_timeslice)
          in
          let access =
            Tkr_engine.Optimizer.access ~use_index:m.index
              ~is_period:(fun n -> Database.is_period m.db n)
              ~lookup:(fun n -> Database.schema_of m.db n)
              plan
          in
          let out_schema =
            match as_of with
            | None ->
                Schema.make
                  (Schema.attrs analyzed.schema
                  @ [
                      Schema.attr vt_begin Value.TInt;
                      Schema.attr vt_end Value.TInt;
                    ])
            | Some _ -> analyzed.schema
          in
          let order_by = List.map (Analyzer.resolve_order out_schema) order_by in
          finish
            { plan; exec = make_exec m plan; out_schema; snapshot = true; as_of;
              order_by; limit; stats; diags;
              analysis = Absint.render env_phys plan; access;
              tables = List.sort_uniq String.compare (collect_rels [] plan);
              pooled = (m.engine = Row && Option.is_some m.pool) }
      | `Plain inner ->
          let analyzed =
            phase (fun ns -> stats.analyze_ns <- ns) @@ fun () ->
            Analyzer.analyze_query (plain_catalog m) inner
          in
          let plain_lookup n =
            if Database.mem m.db n then Some (Database.schema_of m.db n)
            else None
          in
          (* plain queries see period tables with their encoding exposed,
             so seed the period columns from the stored time bounds *)
          let env_plain =
            Absint.env
              ~is_period:(fun n -> Database.is_period m.db n)
              ~time_bounds:(Database.time_bounds m.db) plain_lookup
          in
          let diags =
            checked @@ fun () ->
            Check.logical ~absint:env_plain ~lookup:plain_lookup
              analyzed.algebra
          in
          let plan =
            if m.prune then Absint.prune env_plain analyzed.algebra
            else analyzed.algebra
          in
          let plan = Tkr_engine.Optimizer.merge_selects plan in
          let access =
            Tkr_engine.Optimizer.access ~use_index:m.index
              ~is_period:(fun n -> Database.is_period m.db n)
              ~lookup:(fun n -> Database.schema_of m.db n)
              plan
          in
          let order_by =
            List.map (Analyzer.resolve_order analyzed.schema) order_by
          in
          finish
            {
              plan;
              exec = make_exec m plan;
              out_schema = analyzed.schema;
              snapshot = false;
              as_of = None;
              order_by;
              limit;
              stats;
              diags;
              analysis = Absint.render env_plain plan;
              access;
              tables = List.sort_uniq String.compare (collect_rels [] plan);
              pooled = (m.engine = Row && Option.is_some m.pool);
            })
  | _ -> err "TKR021" "not a query"

let prepare_statement m stmt =
  read_locked m (fun () -> prepare_statement_unlocked m stmt)

let prepare m (sql : string) : prepared =
  let ns, stmt = Clock.elapsed (fun () -> Parser.statement sql) in
  let p = prepare_statement m stmt in
  p.stats.parse_ns <- ns;
  locked m.lock (fun () ->
      m.totals.parse_ns <- Int64.add m.totals.parse_ns ns);
  p

(** Analyze the snapshot query inside a [SEQ VT (...)] statement and return
    its logical algebra and data schema — the input shared by the rewriter
    and the native baseline evaluators. *)
let snapshot_algebra m (sql : string) : Algebra.t * Schema.t =
  match Parser.statement sql with
  | Ast.Query { q = Ast.Seq_vt inner; _ } ->
      read_locked m @@ fun () ->
      let a = Analyzer.analyze_query (snapshot_catalog m) inner in
      (a.algebra, a.schema)
  | _ -> err "TKR021" "expected a SEQ VT query"

let run_prepared ?(obs = Trace.disabled) m (p : prepared) : Table.t =
  read_locked m @@ fun () ->
  let exec () = p.exec obs m.db in
  (* a pool accepts one batch submitter at a time: pooled statements
     queue on the pool lock, serial ones run fully concurrently *)
  let ns, result =
    Clock.elapsed (fun () ->
        if p.pooled then locked m.pool_lock exec else exec ())
  in
  locked m.lock (fun () ->
      p.stats.runs <- p.stats.runs + 1;
      p.stats.execute_ns <- Int64.add p.stats.execute_ns ns;
      m.totals.runs <- m.totals.runs + 1;
      m.totals.execute_ns <- Int64.add m.totals.execute_ns ns);
  Metrics.incr (Metrics.counter m.metrics "statements_run");
  Metrics.observe
    (Metrics.histogram m.metrics "execute_us")
    (Int64.to_int (Int64.div ns 1000L));
  let result =
    match p.as_of with
    | None -> result
    | Some t ->
        (* keep the rows alive at [t], drop the period columns *)
        let n = Schema.arity (Table.schema result) in
        let keep = List.init (n - 2) Fun.id in
        let rows =
          Array.to_seq (Table.rows result)
          |> Seq.filter (fun row ->
                 match (Tuple.get row (n - 2), Tuple.get row (n - 1)) with
                 | Value.Int b, Value.Int e -> b <= t && t < e
                 | _ -> false)
          |> Seq.map (Tuple.project keep)
          |> Array.of_seq
        in
        Table.of_array p.out_schema rows
  in
  let result = Table.of_array p.out_schema (Table.rows result) in
  let rows =
    if p.order_by = [] then Table.rows result
    else (
      let r = Array.copy (Table.rows result) in
      let cmp a b =
        let rec go = function
          | [] -> Tuple.compare a b (* deterministic tie-break *)
          | (col, desc) :: rest ->
              let c = Value.compare (Tuple.get a col) (Tuple.get b col) in
              let c = if desc then -c else c in
              if c <> 0 then c else go rest
        in
        go p.order_by
      in
      Array.sort cmp r;
      r)
  in
  let rows =
    match p.limit with
    | Some l when Array.length rows > l -> Array.sub rows 0 l
    | _ -> rows
  in
  locked m.lock (fun () ->
      p.stats.last_rows <- Array.length rows;
      m.totals.last_rows <- Array.length rows);
  Metrics.observe (Metrics.histogram m.metrics "rows_out") (Array.length rows);
  Table.of_array p.out_schema rows

(* ---- DDL / DML ---- *)

let const_value (e : Ast.expr) : Value.t =
  match e with
  | Ast.Num i -> Value.Int i
  | Ast.Fnum f -> Value.Float f
  | Ast.Str s -> Value.Str s
  | Ast.Bool b -> Value.Bool b
  | Ast.Null -> Value.Null
  | Ast.Neg (Ast.Num i) -> Value.Int (-i)
  | Ast.Neg (Ast.Fnum f) -> Value.Float (-.f)
  | _ -> err "TKR023" "INSERT values must be literals"

(* ---- EXPLAIN rendering ---- *)

(** The final (optimized, rewritten) plan of a prepared query as text. *)
let render_plan (p : prepared) : string =
  let head =
    Format.asprintf "@[<v>%s query%s@,output: %a@,plan:@,  @[%a@]@]"
      (if p.snapshot then "snapshot" else "plain")
      (match p.as_of with Some t -> Printf.sprintf " (AS OF %d)" t | None -> "")
      Schema.pp p.out_schema Algebra.pp p.plan
  in
  let buf = Buffer.create (String.length head + String.length p.analysis + 32) in
  Buffer.add_string buf head;
  if p.access <> [] then begin
    Buffer.add_string buf "\naccess: ";
    Buffer.add_string buf
      (String.concat " "
         (List.map (fun (n, v) -> n ^ "=" ^ v) p.access))
  end;
  Buffer.add_string buf "\nanalysis:";
  String.split_on_char '\n' p.analysis
  |> List.iter (fun line ->
         Buffer.add_string buf "\n  ";
         Buffer.add_string buf line);
  Buffer.contents buf

(** EXPLAIN ANALYZE output: the plan, the executed trace tree annotated
    with per-operator counters, timings and (the collector being GC-
    profiled) allocation deltas, the phase summary, and the middleware's
    execute-latency quantiles. *)
let render_analyze m (p : prepared) (obs : Trace.t) (result : Table.t) : string =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (render_plan p);
  Buffer.add_string buf "\nexecution:\n";
  List.iter
    (fun root ->
      String.split_on_char '\n' (Trace.to_text root)
      |> List.iter (fun line ->
             if line <> "" then (
               Buffer.add_string buf "  ";
               Buffer.add_string buf line;
               Buffer.add_char buf '\n')))
    (Trace.roots obs);
  Buffer.add_string buf
    (Printf.sprintf "result: %d rows\n" (Table.cardinality result));
  (* whole-query GC/allocation summary off the root spans *)
  (let words key =
     List.fold_left
       (fun acc root ->
         match Trace.find_attr root key with
         | Some (Trace.Float w) -> acc +. w
         | Some (Trace.Int w) -> acc +. float_of_int w
         | _ -> acc)
       0. (Trace.roots obs)
   in
   let minor = words Trace.gc_minor_words
   and major = words Trace.gc_major_words in
   if minor > 0. || major > 0. then
     Buffer.add_string buf
       (Printf.sprintf "gc: %.0f minor words, %.0f major words\n" minor major));
  Buffer.add_string buf (Format.asprintf "%a" pp_phase_stats p.stats);
  (let h = Metrics.histogram m.metrics "execute_us" in
   let n = Metrics.histogram_observations h in
   if n > 0 then
     Buffer.add_string buf
       (Printf.sprintf
          "\nexecute latency over %d statement%s: p50=%d us p95=%d us p99=%d \
           us"
          n
          (if n = 1 then "" else "s")
          (Metrics.histogram_quantile h 0.50)
          (Metrics.histogram_quantile h 0.95)
          (Metrics.histogram_quantile h 0.99)));
  Buffer.contents buf

(* ---- CHECK / lint: run the static analyzer without executing ---- *)

(** The full static analysis of one statement, never raising: front-end
    and check-phase errors come back as diagnostics.  DDL/DML statements
    have nothing to check statically. *)
let rec check_statement m (stmt : Ast.statement) : Diagnostic.t list =
  match stmt with
  | Ast.Query { origin; _ } -> (
      match prepare_statement m stmt with
      | p -> p.diags
      | exception Rejected ds -> ds
      | exception Error d -> stamp_pos origin [ d ]
      | exception Analyzer.Error d -> stamp_pos origin [ d ])
  | Ast.Explain { target; _ } | Ast.Check { target } -> check_statement m target
  | Ast.Create_table _ | Ast.Insert _ | Ast.Drop_table _ | Ast.Update _
  | Ast.Delete _ ->
      []

(** Lint one statement's logical plan under an explicit capability
    profile: what would that evaluation style get wrong on this query
    (Table 1)?  DDL/DML have no plan to lint. *)
let rec lint_statement m (profile : Lint.profile) (stmt : Ast.statement) :
    Diagnostic.t list =
  match stmt with
  | Ast.Query { q; _ } ->
      let algebra =
        read_locked m @@ fun () ->
        match q with
        | Ast.Seq_vt inner | Ast.Seq_vt_as_of (_, inner) ->
            (Analyzer.analyze_query (snapshot_catalog m) inner).algebra
        | Ast.Seq_vt_set inner ->
            setify (Analyzer.analyze_query (snapshot_catalog m) inner).algebra
        | q -> (Analyzer.analyze_query (plain_catalog m) q).algebra
      in
      Lint.plan profile algebra
  | Ast.Explain { target; _ } | Ast.Check { target } ->
      lint_statement m profile target
  | Ast.Create_table _ | Ast.Insert _ | Ast.Drop_table _ | Ast.Update _
  | Ast.Delete _ ->
      []

(** Statically analyze one SQL statement; parse and lexical errors are
    returned as diagnostics too. *)
let check m (sql : string) : Diagnostic.t list =
  match Tkr_sql.Parser.statement sql with
  | stmt -> check_statement m stmt
  | exception Tkr_sql.Parser.Error d -> [ d ]
  | exception Tkr_sql.Lexer.Error d -> [ d ]

type result = Rows of Table.t | Done of string

(* queries, EXPLAIN and CHECK: the caller holds the read side of the
   catalog lock (prepare/run take their own nested read locks) *)
let rec execute_query_statement m (stmt : Ast.statement) : result =
  match stmt with
  | Ast.Query _ -> Rows (run_prepared m (prepare_statement m stmt))
  | Ast.Check { target } ->
      Done (Diagnostic.report_to_text (check_statement m target))
  | Ast.Explain { analyze; target } -> (
      match target with
      | Ast.Query _ ->
          let p = prepare_statement m target in
          if not analyze then Done (render_plan p)
          else
            let obs = Trace.create ~gc:true () in
            let result = run_prepared ~obs m p in
            Done (render_analyze m p obs result)
      | Ast.Explain _ ->
          execute_query_statement m target  (* EXPLAIN EXPLAIN ... *)
      | _ -> err "TKR021" "EXPLAIN expects a query")
  | _ -> err "TKR021" "not a query"

(* DDL/DML: the caller holds the exclusive write side of the catalog
   lock — no query executes while the catalog or a table mutates *)
let execute_update_statement m (stmt : Ast.statement) : result =
  match stmt with
  | Ast.Create_table { tbl_name; cols; period } -> (
      let schema =
        Schema.make (List.map (fun (n, ty) -> Schema.attr n ty) cols)
      in
      let empty = Table.empty schema in
      match period with
      | None ->
          Database.add_table m.db tbl_name empty;
          Hashtbl.remove m.insert_order tbl_name;
          Done (Printf.sprintf "created table %s" tbl_name)
      | Some (b, e) ->
          let find c =
            match List.find_index (fun (n, _) -> String.equal n c) cols with
            | Some i -> i
            | None -> err "TKR024" "period column %s is not declared" c
          in
          let bi = find b and ei = find e in
          List.iter
            (fun i ->
              match List.nth cols i with
              | _, Value.TInt -> ()
              | n, _ -> err "TKR024" "period column %s must have type int" n)
            [ bi; ei ];
          Database.add_period_table m.db tbl_name ~begin_col:bi ~end_col:ei
            empty;
          (* remember declared -> stored order for INSERT *)
          let n = List.length cols in
          let data =
            List.filter (fun i -> i <> bi && i <> ei) (List.init n Fun.id)
          in
          Hashtbl.replace m.insert_order (String.lowercase_ascii tbl_name)
            (data @ [ bi; ei ]);
          Done (Printf.sprintf "created period table %s" tbl_name))
  | Ast.Insert { ins_name; rows } ->
      let schema = Database.schema_of m.db ins_name in
      let order =
        match
          Hashtbl.find_opt m.insert_order (String.lowercase_ascii ins_name)
        with
        | Some o -> o
        | None -> List.init (Schema.arity schema) Fun.id
      in
      let tuples =
        List.map
          (fun row ->
            if List.length row <> Schema.arity schema then
              err "TKR022" "INSERT arity mismatch for %s" ins_name;
            let vals = Array.of_list (List.map const_value row) in
            Tuple.of_array
              (Array.of_list (List.map (fun i -> vals.(i)) order)))
          rows
      in
      Database.append_rows m.db ins_name tuples;
      Done (Printf.sprintf "inserted %d rows into %s" (List.length rows) ins_name)
  | Ast.Drop_table name ->
      Database.remove_table m.db name;
      Done (Printf.sprintf "dropped table %s" name)
  | Ast.Update { upd_name; portion; sets; upd_where } ->
      let schema = Database.schema_of m.db upd_name in
      let n = Schema.arity schema in
      let is_period = Database.is_period m.db upd_name in
      if portion <> None && not is_period then
        err "TKR025" "FOR PORTION OF requires a period table";
      let resolve_col c =
        match Schema.find_opt schema c with
        | Some i ->
            if is_period && portion <> None && i >= n - 2 then
              err "TKR025" "cannot SET the period columns under FOR PORTION OF";
            i
        | None -> err "TKR001" "unknown column %s in UPDATE %s" c upd_name
      in
      let sets =
        List.map
          (fun (c, e) ->
            ( resolve_col c,
              Tkr_sql.Analyzer.resolve ~schema ~on_agg:Tkr_sql.Analyzer.no_agg e ))
          sets
      in
      let pred =
        Option.map
          (Tkr_sql.Analyzer.resolve ~schema ~on_agg:Tkr_sql.Analyzer.no_agg)
          upd_where
      in
      let matches row =
        match pred with None -> true | Some p -> Expr.holds row p
      in
      let apply_sets row =
        let out = Array.copy (row : Tuple.t :> Value.t array) in
        List.iter (fun (i, e) -> out.(i) <- Expr.eval row e) sets;
        Tuple.of_array out
      in
      let updated = ref 0 in
      let rows =
        Array.to_seq (Table.rows (Database.find m.db upd_name))
        |> Seq.concat_map (fun row ->
               if not (matches row) then Seq.return row
               else
                 match portion with
                 | None ->
                     incr updated;
                     Seq.return (apply_sets row)
                 | Some (a, b) -> (
                     let rb, re = Tkr_engine.Ops.period_of_row row in
                     let ob = max rb a and oe = min re b in
                     if ob >= oe then Seq.return row
                     else (
                       incr updated;
                       let with_period r b e =
                         let out = Array.copy (r : Tuple.t :> Value.t array) in
                         out.(n - 2) <- Value.Int b;
                         out.(n - 1) <- Value.Int e;
                         Tuple.of_array out
                       in
                       let frags =
                         (if rb < ob then [ with_period row rb ob ] else [])
                         @ [ with_period (apply_sets row) ob oe ]
                         @ if oe < re then [ with_period row oe re ] else []
                       in
                       List.to_seq frags)))
        |> Array.of_seq
      in
      Database.set_rows m.db upd_name rows;
      Done (Printf.sprintf "updated %d rows in %s" !updated upd_name)
  | Ast.Delete { del_name; del_portion; del_where } ->
      let schema = Database.schema_of m.db del_name in
      let n = Schema.arity schema in
      let is_period = Database.is_period m.db del_name in
      if del_portion <> None && not is_period then
        err "TKR025" "FOR PORTION OF requires a period table";
      let pred =
        Option.map
          (Tkr_sql.Analyzer.resolve ~schema ~on_agg:Tkr_sql.Analyzer.no_agg)
          del_where
      in
      let matches row =
        match pred with None -> true | Some p -> Expr.holds row p
      in
      let deleted = ref 0 in
      let rows =
        Array.to_seq (Table.rows (Database.find m.db del_name))
        |> Seq.concat_map (fun row ->
               if not (matches row) then Seq.return row
               else
                 match del_portion with
                 | None ->
                     incr deleted;
                     Seq.empty
                 | Some (a, b) -> (
                     let rb, re = Tkr_engine.Ops.period_of_row row in
                     let ob = max rb a and oe = min re b in
                     if ob >= oe then Seq.return row
                     else (
                       incr deleted;
                       let with_period r b e =
                         let out = Array.copy (r : Tuple.t :> Value.t array) in
                         out.(n - 2) <- Value.Int b;
                         out.(n - 1) <- Value.Int e;
                         Tuple.of_array out
                       in
                       let frags =
                         (if rb < ob then [ with_period row rb ob ] else [])
                         @ if oe < re then [ with_period row oe re ] else []
                       in
                       List.to_seq frags)))
        |> Array.of_seq
      in
      Database.set_rows m.db del_name rows;
      Done (Printf.sprintf "deleted %d rows from %s" !deleted del_name)
  | Ast.Query _ | Ast.Explain _ | Ast.Check _ ->
      err "TKR021" "not a DDL/DML statement"

(* take the lock side matching the statement: queries (and EXPLAIN/CHECK)
   share the read side and run concurrently, DDL/DML is exclusive *)
let execute_statement m (stmt : Ast.statement) : result =
  match stmt with
  | Ast.Query _ | Ast.Explain _ | Ast.Check _ ->
      read_locked m (fun () -> execute_query_statement m stmt)
  | Ast.Create_table _ | Ast.Insert _ | Ast.Drop_table _ | Ast.Update _
  | Ast.Delete _ ->
      write_locked m (fun () -> execute_update_statement m stmt)

let execute m (sql : string) : result =
  let ns, stmt = Clock.elapsed (fun () -> Parser.statement sql) in
  locked m.lock (fun () ->
      m.totals.parse_ns <- Int64.add m.totals.parse_ns ns);
  execute_statement m stmt

(** Run a whole ;-separated script, returning the result of each statement. *)
let execute_script m (sql : string) : result list =
  let ns, stmts = Clock.elapsed (fun () -> Parser.script sql) in
  locked m.lock (fun () ->
      m.totals.parse_ns <- Int64.add m.totals.parse_ns ns);
  List.map (execute_statement m) stmts

(** Convenience: run a query and return its rows. *)
let query m (sql : string) : Table.t =
  match execute m sql with
  | Rows t -> t
  | Done _ -> err "TKR021" "expected a query, got a DDL/DML statement"

(** EXPLAIN: the final (optimized, rewritten) plan of a query as text. *)
let explain m (sql : string) : string = render_plan (prepare m sql)

(** EXPLAIN ANALYZE as a function: prepare, execute under a fresh trace
    collector, render the annotated operator tree plus phase timings. *)
let explain_analyze m (sql : string) : string =
  let p = prepare m sql in
  let obs = Trace.create ~gc:true () in
  let result = run_prepared ~obs m p in
  render_analyze m p obs result

let prepared_stats (p : prepared) = p.stats
let totals_json m : Json.t = locked m.lock (fun () -> phase_stats_json m.totals)
