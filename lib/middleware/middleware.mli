(** The database middleware of Section 9: snapshot semantics as a SQL
    language feature.

    - [SEQ VT (q)] evaluates [q] under snapshot semantics over the period
      tables it references; the result is a period table with trailing
      [vt_begin]/[vt_end] columns and the canonical (coalesced) encoding.
    - [SEQ VT AS OF t (q)] returns the snapshot of [q] at time [t]
      (non-temporal result), pushing the timeslice to the base tables —
      sound because τ_T commutes with queries.
    - Queries without [SEQ VT] run as ordinary SQL.
    - DDL/DML: [CREATE TABLE ... PERIOD (b, e)], [INSERT], [DROP TABLE],
      [UPDATE]/[DELETE] including SQL:2011 [FOR PORTION OF].

    A middleware is safe for concurrent callers (threads or domains):
    queries prepare and execute under the shared read side of an internal
    readers-writer lock, DDL/DML and settings changes take the exclusive
    write side, cumulative stats are mutex-guarded and the metrics
    registry is itself thread-safe.  Statements whose plans captured a
    worker pool serialize their executions on a pool lock (a
    {!Tkr_par.Pool.t} accepts one batch submitter at a time); serial
    statements run fully concurrently. *)

open Tkr_relation
module Table = Tkr_engine.Table
module Database = Tkr_engine.Database
module Rewriter = Tkr_sqlenc.Rewriter

module Diagnostic = Tkr_check.Diagnostic

exception Error of Diagnostic.t
(** Semantic errors, as coded diagnostics. *)

exception Rejected of Diagnostic.t list
(** The static [check] phase found errors (or, in strict mode, warnings);
    the statement was not executed. *)

type t

type backend = Interpreted | Compiled
(** Execute plans by AST interpretation or compiled to OCaml closures
    (faster for prepared statements run repeatedly). *)

type engine = Row | Vec
(** Row-at-a-time interpreted execution ({!Row}, the default and the
    differential-testing oracle) or columnar batch-at-a-time execution
    ({!Vec}, {!Tkr_vec.Vexec}).  The vectorized engine reproduces the row
    engine's output byte-for-byte; it is serial, so a configured worker
    pool is ignored while it is selected. *)

val create :
  ?options:Rewriter.options ->
  ?optimize:bool ->
  ?prune:bool ->
  ?index:bool ->
  ?backend:backend ->
  ?engine:engine ->
  ?strict:bool ->
  ?parallelism:int ->
  ?db:Database.t ->
  unit ->
  t
(** A middleware over a (possibly pre-populated) engine database.  Default
    options: {!Rewriter.optimized}.  [prune] (default true) applies the
    {!Tkr_check.Absint} analysis-driven plan pruning (provably-empty
    subplans, provably-idempotent Distinct/Coalesce) — byte-identity
    preserving, so results are unchanged.  [strict] (--Werror, default
    false) makes the check phase reject statements on warnings too.
    [parallelism] (default 1) > 1 creates a {!Tkr_par.Pool.t} of that many
    domains on which the temporal operators run their sweeps; at 1 the
    serial engine runs unchanged, and parallel plans produce byte-identical
    rows either way. *)

val database : t -> Database.t
val set_options : t -> Rewriter.options -> unit
val set_optimize : t -> bool -> unit

val set_prune : t -> bool -> unit
(** Toggle {!Tkr_check.Absint}-driven plan pruning (default on).
    Pruning is byte-identity preserving: toggling never changes any
    query's rows or their order, only the plan shape. *)

val prune : t -> bool

val set_index : t -> bool -> unit
(** Toggle temporal interval index usage (default on): index-answerable
    selections and no-equi-key joins over stored period tables answer
    through {!Tkr_idx} instead of scanning.  Byte-identity preserving —
    toggling never changes any query's rows or their order, only the
    access path (visible as [access: ...=index|scan] in EXPLAIN).
    Affects statements prepared afterwards; already-prepared statements
    keep the flag they captured. *)

val index_enabled : t -> bool
val set_backend : t -> backend -> unit

val set_engine : t -> engine -> unit
(** Switch between row and vectorized execution (affects statements
    prepared afterwards; already-prepared statements keep the engine they
    captured). *)

val engine : t -> engine
val set_strict : t -> bool -> unit
(** --Werror: reject statements whose check phase reports warnings. *)

val strict : t -> bool
val options : t -> Rewriter.options

val parallelism : t -> int
(** Pool size; 1 when running serially. *)

val set_parallelism : t -> int -> unit
(** Replace the worker pool ([n <= 1] removes it).  Statements prepared
    earlier keep the pool they captured; a replaced pool is shut down, on
    which already-prepared statements degrade gracefully to serial
    execution. *)

val shutdown : t -> unit
(** Join the worker domains (no-op when serial).  The middleware stays
    usable and reverts to serial execution. *)

val read_locked : t -> (unit -> 'a) -> 'a
(** Run [f] holding the shared read side of the middleware's catalog
    lock: no DDL/DML executes inside [f], so table versions read there
    are consistent with query results computed there.  Reentrant — [f]
    may call any query-side middleware function.  The query server wraps
    (version read, execute, cache fill) in this bracket. *)

val write_locked : t -> (unit -> 'a) -> 'a
(** Run [f] holding the exclusive write side (no queries in flight).
    [f] must not call query-side middleware functions.  Every
    [write_locked] section bumps {!epoch}. *)

val epoch : t -> int
(** Catalog/settings generation: changes whenever a {!write_locked}
    section ran (DDL, DML, settings) or the underlying
    {!Tkr_engine.Database.t} was mutated directly.  A {!prepared}
    statement bakes the catalog state of prepare time (time bounds,
    schema arities, rewrite options), so a plan cached outside the
    middleware is valid only while [epoch] still equals its value at
    prepare time; compare under {!read_locked} to exclude concurrent
    mutations.  Monotone non-decreasing. *)

val set_epoch_hook : t -> (int -> unit) option -> unit
(** Observer notified with the new {!epoch} after every completed
    {!write_locked} section (DDL, DML, settings), while the write lock is
    still held — keep it cheap and non-reentrant.  [None] removes it.
    The query server installs its epoch-bump telemetry here. *)

(** Cumulative phase timings of one prepared statement (or, for
    {!totals}, of a whole middleware): the preparation pipeline
    (parse → analyze → rewrite → optimize) is timed once per statement,
    [execute_ns] accumulates over every {!run_prepared}. *)
type phase_stats = {
  mutable parse_ns : int64;
  mutable analyze_ns : int64;
  mutable check_ns : int64;  (** static analysis (Tkr_check), all stages *)
  mutable rewrite_ns : int64;
  mutable optimize_ns : int64;
  mutable runs : int;
  mutable execute_ns : int64;
  mutable last_rows : int;
}

val pp_phase_stats : Format.formatter -> phase_stats -> unit
val phase_stats_json : phase_stats -> Tkr_obs.Json.t

type prepared = {
  plan : Algebra.t;
  exec : Tkr_obs.Trace.t -> Database.t -> Table.t;
      (** run against a trace collector ({!Tkr_obs.Trace.disabled} for no
          instrumentation) *)
  out_schema : Schema.t;
  snapshot : bool;
  as_of : int option;
  order_by : (int * bool) list;
  limit : int option;
  stats : phase_stats;
  diags : Diagnostic.t list;
      (** diagnostics of the static [check] phase (warnings only: a
          statement with errors raises {!Rejected} instead) *)
  analysis : string;
      (** {!Tkr_check.Absint} rendering of the final plan with the
          inferred per-operator facts (time windows, emptiness,
          duplicate-freeness), shown by [EXPLAIN] *)
  access : (string * string) list;
      (** the planner's access-path decision per stored period table read
          through a selection or a no-equi-key join —
          [(table, "index" | "scan")] in plan order, shown by [EXPLAIN] *)
  tables : string list;
      (** base tables the final plan reads, sorted and deduplicated —
          with {!Tkr_engine.Database.version} these form the dependency
          set of a snapshot-aware result cache entry *)
  pooled : bool;
      (** the exec closure captured a worker pool (executions serialize
          on the middleware's pool lock) *)
}
(** A parsed, analyzed, statically checked and (for snapshot queries)
    rewritten statement, ready for repeated execution. *)

val prepare : t -> string -> prepared
(** @raise Rejected when the static check phase reports errors (or
    warnings under [strict]). *)

val run_prepared : ?obs:Tkr_obs.Trace.t -> t -> prepared -> Table.t
(** Execute a prepared statement; [obs] (default {!Tkr_obs.Trace.disabled})
    collects a per-operator trace of the run. *)

val prepared_stats : prepared -> phase_stats

val totals : t -> phase_stats
(** Phase timings accumulated over every statement this middleware
    prepared or ran. *)

val totals_report : t -> string
val totals_json : t -> Tkr_obs.Json.t

val metrics : t -> Tkr_obs.Metrics.t
(** The middleware's metrics registry: [statements_run] counter,
    [execute_us] latency histogram and [rows_out] cardinality histogram,
    updated by every {!run_prepared}.  Export it with
    {!Tkr_obs.Openmetrics.of_metrics}. *)

val snapshot_algebra : t -> string -> Algebra.t * Schema.t
(** The logical algebra inside a [SEQ VT] statement and its data schema —
    the common input of the rewriter and the native baseline evaluators. *)

val check : t -> string -> Diagnostic.t list
(** [CHECK <query>] as a function: run the whole static analysis (type
    checking, plan invariants, lint) without executing.  Never raises —
    lexical, syntax and semantic errors come back as diagnostics. *)

val check_statement : t -> Tkr_sql.Ast.statement -> Diagnostic.t list

val lint_statement :
  t -> Tkr_check.Lint.profile -> Tkr_sql.Ast.statement -> Diagnostic.t list
(** Lint one statement's logical plan under an explicit capability
    profile (the paper's Table 1 evaluation styles); [[]] for DDL/DML.
    @raise Tkr_sql.Analyzer.Error when the statement does not analyze. *)

type result = Rows of Table.t | Done of string

val execute : t -> string -> result
(** Execute one statement (query, DDL or DML).
    @raise Error on semantic errors. *)

val execute_statement : t -> Tkr_sql.Ast.statement -> result
val execute_script : t -> string -> result list

val query : t -> string -> Table.t
(** Like {!execute} but requires a query. *)

val explain : t -> string -> string
(** EXPLAIN: render the final (optimized, rewritten) plan of a query. *)

val explain_analyze : t -> string -> string
(** EXPLAIN ANALYZE: prepare, execute under a fresh trace collector, and
    render the plan plus the executed operator tree annotated with rows
    in/out, operator internals (join strategy, coalesce groups/segments,
    split fan-out, ...), elapsed time and per-span GC/allocation deltas,
    followed by phase timings and the middleware's execute-latency
    quantiles (p50/p95/p99).
    Equivalent to executing the [EXPLAIN ANALYZE (stmt)] statement. *)
