(** Per-plan-fingerprint resource ledger.

    A fixed ring of accounting slots, keyed by plan fingerprint (the
    digest of the normalized plan — the same identity the result cache
    and the slow-query log aggregate on).  Each slot accumulates
    cumulative wall and queue time, GC word deltas, rows returned, cache
    hits/misses and a latency histogram (p50/p95 via
    {!Tkr_obs.Metrics.histogram_quantile}).

    When a new fingerprint arrives and its ring position is occupied, the
    previous occupant is displaced (ring-buffer semantics): under churn
    beyond [capacity] the ledger is a recent window, not an exact
    census — {!evictions} says how much was displaced.

    All operations are mutex-serialized; {!observe} is one hash lookup
    and a dozen field bumps, cheap enough to run unconditionally on the
    serve hot path. *)

type t

val create : ?capacity:int -> unit -> t
(** [capacity] (default 512, min 1) fingerprints tracked at once. *)

val capacity : t -> int

val size : t -> int
(** Fingerprints currently tracked. *)

val evictions : t -> int
(** Fingerprints displaced by ring reuse since creation. *)

val observe :
  t ->
  fp:string ->
  stmt:string ->
  ok:bool ->
  disposition:string ->
  queue_us:int ->
  exec_us:int ->
  total_us:int ->
  rows_out:int ->
  gc_minor_w:int ->
  gc_major_w:int ->
  unit
(** Account one finished request under its plan fingerprint.  [stmt] is
    kept as the exemplar statement of a fresh slot; [disposition] feeds
    the hit/miss split (["hit"] / ["miss"]; other dispositions count
    neither). *)

(** One fingerprint's accounting, snapshotted. *)
type row = {
  r_fp : string;
  r_stmt : string;  (** exemplar statement *)
  r_count : int;
  r_errors : int;
  r_hits : int;
  r_misses : int;
  r_total_us : int;  (** cumulative wall (queue + execute) *)
  r_queue_us : int;  (** cumulative queue wait *)
  r_max_us : int;
  r_rows_out : int;
  r_gc_minor_w : int;
  r_gc_major_w : int;
  r_p50_us : int;
  r_p95_us : int;
}

val hit_ratio : row -> float
(** Hits over lookups; [0.0] when the fingerprint never touched the
    cache (never [nan]). *)

val rows : ?top:int -> t -> row list
(** Snapshot, sorted by cumulative wall time descending; [top] keeps the
    first [n]. *)

val row_to_json : row -> Tkr_obs.Json.t

val to_json : ?top:int -> t -> Tkr_obs.Json.t
(** The [LEDGER] scrape payload:
    [{"capacity", "tracked", "evictions", "rows": [...]}]. *)

val openmetrics : ?top:int -> t -> string list
(** Pre-rendered OpenMetrics families ([tkr_ledger_*], labelled by
    fingerprint), for {!Tkr_obs.Openmetrics.of_metrics}'s [extra];
    [top] (default 20) bounds the exposition size.  Empty when nothing
    has been observed. *)
