(** Deterministic replay of a flight recording against a live server.

    Replay reproduces the recorded workload's *order*, then checks that
    the server reproduces the recorded *bytes*:

    - each recorded session gets its own wire connection, so the
      server's per-session FIFO guarantee applies to replayed traffic
      exactly as it did to the original;
    - a global turnstile releases requests one at a time in recorded
      arrival ([e_seq]) order, so cross-session interleaving of DML and
      queries is reproduced too — per-session program order is a
      subsequence of the global order;
    - entries that recorded no table-version vector (DDL/DML, meta
      statements, errors) are {e write barriers}: the pipeline is
      drained before they go out and the turn is held until their
      response arrives.  Between barriers the recorded dependency
      vectors are constant, so reads commute and may pipeline freely —
      the snapshot-equivalence argument behind the result cache is
      exactly what licenses replay's concurrency;
    - every comparable response is digested the way capture digested it
      (exact ok-frame payload bytes, or error code/message) and diffed
      against [e_digest].

    Recorded [DEADLINE_EXCEEDED] / [SERVER_BUSY] outcomes depend on
    capture-time load, not on the data: they are re-sent (to keep
    program order intact) but excluded from the byte-diff and counted
    as [skipped].

    With [paced] the sender additionally sleeps until each request's
    recorded monotonic offset, reproducing the original arrival tempo;
    the default replays as fast as admission allows. *)

module Record = Tkr_rec.Record

type mismatch = {
  mm_seq : int;
  mm_session : int;  (** recorded session id *)
  mm_stmt : string;
  mm_expected : string;  (** recorded digest *)
  mm_got : string;  (** digest of the replayed response *)
}

type outcome = {
  total : int;
  compared : int;  (** entries byte-diffed (total - skipped - failed) *)
  matched : int;
  mismatches : mismatch list;
  skipped : int;  (** recorded deadline/busy outcomes, not comparable *)
  failed : int;  (** no response arrived (connection died) *)
  cached : int;  (** replayed responses served from the result cache *)
  wall_ns : float;
  lat_us : float array;  (** per-entry send-to-receive latency *)
  sessions : int;
}

val run :
  ?paced:bool -> ?host:string -> port:int -> Record.entry list -> outcome
(** Replay [entries] (in the given order — [Record.read_file] already
    sorts by [e_seq]) against the server at [host]:[port] (default
    [127.0.0.1]).  Blocks until every response arrived or every
    connection died.
    @raise Tkr_serve.Wire.Protocol_error if a connection is refused at
    setup. *)

val identical : outcome -> bool
(** No mismatches, no transport failures, every compared entry
    matched. *)
