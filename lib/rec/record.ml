(** The flight-recording format: one versioned JSONL document per
    capture.  See the interface for the schema and determinism
    argument. *)

module Json = Tkr_obs.Json

exception Format_error of string

let format_version = 1
let magic = "tkr-flight-recording"

(* ---- digests ---- *)

let digest (s : string) : string = Digest.to_hex (Digest.string s)

let digest_error ~code ~message : string = digest (code ^ "\x00" ^ message)

(* ---- header ---- *)

type header = {
  h_version : int;
  h_started_ms : int;  (** wall-clock ms when the capture began *)
  h_workload : string option;
      (** built-in catalog the server was started with, when known —
          replay rebuilds the same initial database from it *)
  h_source : string;  (** free-form producer tag, e.g. ["tkr_cli serve"] *)
}

let header ?workload ?(source = "tkr_rec") () =
  {
    h_version = format_version;
    h_started_ms = int_of_float (Unix.gettimeofday () *. 1000.);
    h_workload = workload;
    h_source = source;
  }

let header_to_json (h : header) : Json.t =
  Json.Obj
    ([
       ("rec", Json.Str magic);
       ("version", Json.Int h.h_version);
       ("started_ms", Json.Int h.h_started_ms);
       ("source", Json.Str h.h_source);
     ]
    @ match h.h_workload with
      | Some w -> [ ("workload", Json.Str w) ]
      | None -> [])

let jint j key =
  Option.value ~default:0 (Option.bind (Json.member key j) Json.to_int_opt)

let jstr j key =
  Option.value ~default:"" (Option.bind (Json.member key j) Json.to_string_opt)

let header_of_json (j : Json.t) : header =
  (match Json.member "rec" j with
  | Some (Json.Str m) when m = magic -> ()
  | _ -> raise (Format_error "not a tkr flight recording (bad magic)"));
  let v = jint j "version" in
  if v < 1 || v > format_version then
    raise
      (Format_error
         (Printf.sprintf "unsupported recording version %d (this build reads <= %d)"
            v format_version));
  {
    h_version = v;
    h_started_ms = jint j "started_ms";
    h_workload = Option.bind (Json.member "workload" j) Json.to_string_opt;
    h_source = jstr j "source";
  }

(* ---- entries ---- *)

type entry = {
  e_seq : int;
  e_session : int;
  e_req_id : int;
  e_trace_id : string option;
  e_stmt : string;
  e_deadline_ms : int option;
  e_arrive_ms : int;
  e_arrive_ns : int64;
  e_queue_us : int;
  e_exec_us : int;
  e_total_us : int;
  e_status : string;
  e_cached : bool;
  e_disposition : string;
  e_fp : string;
  e_epoch : int;
  e_deps : (string * int) list;
  e_rows_in : int;
  e_rows_out : int;
  e_gc_minor_w : int;
  e_gc_major_w : int;
  e_digest : string;
}

let entry_to_json (e : entry) : Json.t =
  Json.Obj
    ([ ("seq", Json.Int e.e_seq); ("sid", Json.Int e.e_session);
       ("req", Json.Int e.e_req_id) ]
    @ (match e.e_trace_id with
      | Some tid -> [ ("trace_id", Json.Str tid) ]
      | None -> [])
    @ [ ("stmt", Json.Str e.e_stmt) ]
    @ (match e.e_deadline_ms with
      | Some ms -> [ ("deadline_ms", Json.Int ms) ]
      | None -> [])
    @ [
        ("arrive_ms", Json.Int e.e_arrive_ms);
        ("arrive_ns", Json.Int (Int64.to_int e.e_arrive_ns));
        ("queue_us", Json.Int e.e_queue_us);
        ("exec_us", Json.Int e.e_exec_us);
        ("total_us", Json.Int e.e_total_us);
        ("status", Json.Str e.e_status);
        ("cached", Json.Bool e.e_cached);
        ("disp", Json.Str e.e_disposition);
        ("fp", Json.Str e.e_fp);
        ("epoch", Json.Int e.e_epoch);
        ("deps", Json.Obj (List.map (fun (t, v) -> (t, Json.Int v)) e.e_deps));
        ("rows_in", Json.Int e.e_rows_in);
        ("rows_out", Json.Int e.e_rows_out);
        ("gc_minor_w", Json.Int e.e_gc_minor_w);
        ("gc_major_w", Json.Int e.e_gc_major_w);
        ("digest", Json.Str e.e_digest);
      ])

let entry_of_json (j : Json.t) : entry =
  let stmt =
    match Option.bind (Json.member "stmt" j) Json.to_string_opt with
    | Some s -> s
    | None -> raise (Format_error "record without stmt")
  in
  {
    e_seq = jint j "seq";
    e_session = jint j "sid";
    e_req_id = jint j "req";
    e_trace_id = Option.bind (Json.member "trace_id" j) Json.to_string_opt;
    e_stmt = stmt;
    e_deadline_ms = Option.bind (Json.member "deadline_ms" j) Json.to_int_opt;
    e_arrive_ms = jint j "arrive_ms";
    e_arrive_ns = Int64.of_int (jint j "arrive_ns");
    e_queue_us = jint j "queue_us";
    e_exec_us = jint j "exec_us";
    e_total_us = jint j "total_us";
    e_status = jstr j "status";
    e_cached =
      (match Json.member "cached" j with Some (Json.Bool b) -> b | _ -> false);
    e_disposition = jstr j "disp";
    e_fp = jstr j "fp";
    e_epoch = jint j "epoch";
    e_deps =
      (match Json.member "deps" j with
      | Some (Json.Obj fields) ->
          List.map
            (fun (t, v) ->
              match Json.to_int_opt v with
              | Some v -> (t, v)
              | None -> raise (Format_error "bad dependency version"))
            fields
      | _ -> []);
    e_rows_in = jint j "rows_in";
    e_rows_out = jint j "rows_out";
    e_gc_minor_w = jint j "gc_minor_w";
    e_gc_major_w = jint j "gc_major_w";
    e_digest = jstr j "digest";
  }

(* ---- recorder ---- *)

type sink = Null | Chan of out_channel | Fn of (Json.t -> unit)

type t = {
  sink : sink;
  lock : Mutex.t;
  mutable live : bool;
  mutable count : int;
}

let disabled = { sink = Null; lock = Mutex.create (); live = false; count = 0 }

let enabled t =
  t != disabled && t.live && (match t.sink with Null -> false | _ -> true)

let locked mu f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

let emit_line t (j : Json.t) =
  match t.sink with
  | Null -> ()
  | Chan oc ->
      output_string oc (Json.to_string j);
      output_char oc '\n';
      flush oc
  | Fn f -> f j

let create ?(header = header ()) sink =
  let t = { sink; lock = Mutex.create (); live = true; count = 0 } in
  locked t.lock (fun () -> emit_line t (header_to_json header));
  t

let write t (e : entry) =
  if enabled t then
    locked t.lock @@ fun () ->
    if t.live then begin
      t.count <- t.count + 1;
      emit_line t (entry_to_json e)
    end

let recorded t = locked t.lock (fun () -> t.count)

let close t =
  if t != disabled then
    locked t.lock @@ fun () ->
    if t.live then begin
      t.live <- false;
      match t.sink with Chan oc -> flush oc | _ -> ()
    end

(* ---- reading ---- *)

let read_channel ic : header * entry list =
  let header =
    match input_line ic with
    | line -> header_of_json (Json.of_string line)
    | exception End_of_file -> raise (Format_error "empty recording")
  in
  let entries = ref [] in
  (try
     while true do
       let line = input_line ic in
       if String.trim line <> "" then
         entries := entry_of_json (Json.of_string line) :: !entries
     done
   with End_of_file -> ());
  (* entries are written at finish time, so the file is in completion
     order; arrival order is the [seq] stamped at admission *)
  let sorted =
    List.sort (fun a b -> compare a.e_seq b.e_seq) (List.rev !entries)
  in
  (header, sorted)

let read_file path : header * entry list =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> read_channel ic)
