(** Deterministic replay of a flight recording against a live server.
    See the interface for the ordering and byte-identity contract. *)

module Record = Tkr_rec.Record
module Wire = Tkr_serve.Wire
module Json = Tkr_obs.Json
module Clock = Tkr_obs.Clock

type mismatch = {
  mm_seq : int;
  mm_session : int;
  mm_stmt : string;
  mm_expected : string;
  mm_got : string;
}

type outcome = {
  total : int;
  compared : int;
  matched : int;
  mismatches : mismatch list;
  skipped : int;
  failed : int;
  cached : int;
  wall_ns : float;
  lat_us : float array;
  sessions : int;
}

(* recorded outcomes that depend on capture-time load, not on the data:
   replayed for program order but excluded from the byte-diff *)
let incomparable (e : Record.entry) =
  e.Record.e_status = "DEADLINE_EXCEEDED" || e.Record.e_status = "SERVER_BUSY"

let window = 32
(* max in-flight requests per session, comfortably below the server's
   default queue_depth so replay itself never triggers SERVER_BUSY *)

(* entries that recorded no table-version vector are writes (DDL/DML and
   meta statements bypass the cache and pin no deps) or errors: they act
   as barriers.  Between two barriers the dependency vector is constant
   — reads commute — so only barriers need strict ordering against the
   rest of the stream *)
let is_barrier (e : Record.entry) = e.Record.e_deps = []

type session_chan = {
  sc_fd : Unix.file_descr;
  sc_indices : int list;  (* positions into the entry array, in order *)
  sc_lock : Mutex.t;
  sc_cond : Condition.t;
  mutable sc_inflight : int;
  mutable sc_received : int;
  mutable sc_dead : bool;
  mutable sc_out : int;
      (* outstanding requests of this session, guarded by the turnstile
         lock — drained to zero when the connection dies so barrier
         waits cannot hang on a dead channel *)
  mutable sc_drained : bool;
      (* reader exited: pipeline accounting for this channel is closed,
         late sends must not re-enter it (guarded by the turnstile lock) *)
}

let locked mu f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

let connect ~host ~port : Unix.file_descr =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
     Unix.setsockopt fd Unix.TCP_NODELAY true
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  match Wire.read_frame fd with
  | Some frame -> (
      match Wire.greeting_of_string frame with
      | Ok _sid -> fd
      | Error e ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          raise
            (Wire.Protocol_error
               (Printf.sprintf "replay connection rejected: %s: %s"
                  (Wire.error_code_to_string e.Wire.code)
                  e.Wire.message)))
  | None ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise (Wire.Protocol_error "no greeting")

(* digest of one response frame, computed the way capture did: the raw
   result payload bytes of an ok frame (exact, no reparse), or the
   code/message of an error frame *)
let digest_of_frame (frame : string) : (string * bool) option =
  let j = Json.of_string frame in
  match Option.bind (Json.member "status" j) Json.to_string_opt with
  | Some "ok" -> (
      match Wire.ok_frame_payload frame with
      | Some payload ->
          let cached =
            match Json.member "cached" j with
            | Some (Json.Bool b) -> b
            | _ -> false
          in
          Some (Record.digest payload, cached)
      | None -> None)
  | Some "error" ->
      let code =
        Option.value ~default:""
          (Option.bind (Json.member "code" j) Json.to_string_opt)
      in
      let message =
        Option.value ~default:""
          (Option.bind (Json.member "message" j) Json.to_string_opt)
      in
      Some (Record.digest_error ~code ~message, false)
  | _ -> None

let run ?(paced = false) ?(host = "127.0.0.1") ~port
    (entries : Record.entry list) : outcome =
  let entries = Array.of_list entries in
  let n = Array.length entries in
  (* sessions in order of first appearance; each gets one connection *)
  let session_order = ref [] in
  let by_session : (int, int list ref) Hashtbl.t = Hashtbl.create 8 in
  Array.iteri
    (fun i (e : Record.entry) ->
      match Hashtbl.find_opt by_session e.Record.e_session with
      | Some l -> l := i :: !l
      | None ->
          Hashtbl.replace by_session e.Record.e_session (ref [ i ]);
          session_order := e.Record.e_session :: !session_order)
    entries;
  let sessions = List.rev !session_order in
  let chans =
    List.map
      (fun sid ->
        {
          sc_fd = connect ~host ~port;
          sc_indices = List.rev !(Hashtbl.find by_session sid);
          sc_lock = Mutex.create ();
          sc_cond = Condition.create ();
          sc_inflight = 0;
          sc_received = 0;
          sc_dead = false;
          sc_out = 0;
          sc_drained = false;
        })
      sessions
  in
  let got : (string * bool) option array = Array.make n None in
  let send_ns = Array.make n 0L in
  let recv_ns = Array.make n 0L in
  (* the global turnstile: requests leave in the order of the entry
     array, whatever session they belong to — cross-session arrival
     order is reproduced, per-session order is a subsequence of it *)
  let turn = ref 0 in
  let t_lock = Mutex.create () in
  let t_cond = Condition.create () in
  (* sent-but-unanswered requests across every session, and per-entry
     send/completion state — all guarded by [t_lock]; barriers wait on
     them.  [account] writes off one entry's pipeline debt; it is
     idempotent so the response path, the write-failure path and the
     reader-exit drain can each fire without double-counting *)
  let g_inflight = ref 0 in
  let sent_ = Array.make n false in
  let done_ = Array.make n false in
  let account (sc : session_chan) gi =
    if sent_.(gi) && not done_.(gi) then begin
      done_.(gi) <- true;
      decr g_inflight;
      sc.sc_out <- sc.sc_out - 1;
      Condition.broadcast t_cond
    end
  in
  let base_arrive_ns =
    if n = 0 then 0L else entries.(0).Record.e_arrive_ns
  in
  let t0 = Clock.now_ns () in
  let sender (sc : session_chan) () =
    List.iter
      (fun gi ->
        let e = entries.(gi) in
        let barrier = is_barrier e in
        locked t_lock (fun () ->
            while !turn <> gi do
              Condition.wait t_cond t_lock
            done;
            (* a write must observe every earlier request's effects:
               drain the pipeline before it goes out (holding the turn,
               so nothing new enters meanwhile) *)
            if barrier then
              while !g_inflight > 0 do
                Condition.wait t_cond t_lock
              done);
        if paced then begin
          let target_s =
            Int64.to_float (Int64.sub e.Record.e_arrive_ns base_arrive_ns)
            /. 1e9
          in
          let elapsed_s =
            Int64.to_float (Int64.sub (Clock.now_ns ()) t0) /. 1e9
          in
          if target_s > elapsed_s then Thread.delay (target_s -. elapsed_s)
        end;
        let send =
          locked sc.sc_lock (fun () ->
              while sc.sc_inflight >= window && not sc.sc_dead do
                Condition.wait sc.sc_cond sc.sc_lock
              done;
              if sc.sc_dead then false
              else begin
                sc.sc_inflight <- sc.sc_inflight + 1;
                true
              end)
        in
        let sent = ref false in
        (if send then begin
           (* count the request as in flight BEFORE it hits the wire:
              the reader's decrement can then never outrun the
              increment, and a reader that exits in between drains the
              entry itself via [account] (it sees [sent_]) *)
           locked t_lock (fun () ->
               sent_.(gi) <- true;
               if sc.sc_drained then done_.(gi) <- true
               else begin
                 incr g_inflight;
                 sc.sc_out <- sc.sc_out + 1
               end);
           sent := true;
           let frame =
             Json.to_string
               (Wire.request_to_json (Wire.request ~id:gi e.Record.e_stmt))
           in
           try
             send_ns.(gi) <- Clock.now_ns ();
             Wire.write_frame sc.sc_fd frame
           with Unix.Unix_error _ | Wire.Protocol_error _ ->
             locked t_lock (fun () -> account sc gi);
             locked sc.sc_lock (fun () ->
                 sc.sc_dead <- true;
                 Condition.broadcast sc.sc_cond)
         end);
        (* a write also holds the turn until its response arrived, so
           the next arrival (possibly another session's read) executes
           against post-write state, exactly as recorded.  [done_] is
           guaranteed to be set eventually: by the response, by the
           write-failure path, or by the reader-exit drain *)
        if barrier && !sent then
          locked t_lock (fun () ->
              while not done_.(gi) do
                Condition.wait t_cond t_lock
              done);
        locked t_lock (fun () ->
            incr turn;
            Condition.broadcast t_cond))
      sc.sc_indices
  in
  let reader (sc : session_chan) () =
    let expected = List.length sc.sc_indices in
    let rec loop () =
      let continue =
        locked sc.sc_lock (fun () -> sc.sc_received < expected && not sc.sc_dead)
      in
      if continue then
        match Wire.read_frame sc.sc_fd with
        | Some frame ->
            (match Json.member "id" (Json.of_string frame) with
            | Some (Json.Int gi) when gi >= 0 && gi < n ->
                recv_ns.(gi) <- Clock.now_ns ();
                got.(gi) <- digest_of_frame frame;
                locked t_lock (fun () -> account sc gi)
            | _ -> ()
            | exception Json.Parse_error _ -> ());
            locked sc.sc_lock (fun () ->
                sc.sc_received <- sc.sc_received + 1;
                sc.sc_inflight <- sc.sc_inflight - 1;
                Condition.broadcast sc.sc_cond);
            loop ()
        | None | (exception Wire.Protocol_error _) | (exception Unix.Unix_error _)
          ->
            locked sc.sc_lock (fun () ->
                sc.sc_dead <- true;
                Condition.broadcast sc.sc_cond)
    in
    (* on exit — clean or dead — write off whatever this channel still
       owes the pipeline, or a barrier elsewhere would wait forever;
       [sc_drained] keeps a racing late send from re-entering it *)
    Fun.protect
      ~finally:(fun () ->
        locked t_lock (fun () ->
            sc.sc_drained <- true;
            List.iter (fun gi -> account sc gi) sc.sc_indices))
      loop
  in
  let threads =
    List.concat_map
      (fun sc ->
        [ Thread.create (reader sc) (); Thread.create (sender sc) () ])
      chans
  in
  List.iter Thread.join threads;
  let wall_ns = Int64.to_float (Int64.sub (Clock.now_ns ()) t0) in
  List.iter
    (fun sc -> try Unix.close sc.sc_fd with Unix.Unix_error _ -> ())
    chans;
  let compared = ref 0 in
  let matched = ref 0 in
  let skipped = ref 0 in
  let failed = ref 0 in
  let cached = ref 0 in
  let mismatches = ref [] in
  let lat_us = Array.make n 0.0 in
  Array.iteri
    (fun gi (e : Record.entry) ->
      (match got.(gi) with
      | Some (_, c) -> if c then incr cached
      | None -> ());
      if recv_ns.(gi) <> 0L && send_ns.(gi) <> 0L then
        lat_us.(gi) <-
          Int64.to_float (Int64.sub recv_ns.(gi) send_ns.(gi)) /. 1e3;
      if incomparable e then incr skipped
      else
        match got.(gi) with
        | None -> incr failed
        | Some (d, _) ->
            incr compared;
            if d = e.Record.e_digest then incr matched
            else
              mismatches :=
                {
                  mm_seq = e.Record.e_seq;
                  mm_session = e.Record.e_session;
                  mm_stmt = e.Record.e_stmt;
                  mm_expected = e.Record.e_digest;
                  mm_got = d;
                }
                :: !mismatches)
    entries;
  {
    total = n;
    compared = !compared;
    matched = !matched;
    mismatches = List.rev !mismatches;
    skipped = !skipped;
    failed = !failed;
    cached = !cached;
    wall_ns;
    lat_us;
    sessions = List.length sessions;
  }

let identical (o : outcome) =
  o.mismatches = [] && o.failed = 0 && o.compared = o.matched
