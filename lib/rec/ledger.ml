(** Per-plan-fingerprint resource ledger: a fixed ring of accounting
    slots.  See the interface for the eviction policy. *)

module Json = Tkr_obs.Json
module Metrics = Tkr_obs.Metrics
module Openmetrics = Tkr_obs.Openmetrics

type slot = {
  slot_hist : Metrics.histogram;  (* total_us distribution; recycled on reuse *)
  mutable s_fp : string;
  mutable s_stmt : string;
  mutable s_count : int;
  mutable s_errors : int;
  mutable s_hits : int;
  mutable s_misses : int;
  mutable s_total_us : int;
  mutable s_queue_us : int;
  mutable s_max_us : int;
  mutable s_rows_out : int;
  mutable s_gc_minor_w : int;
  mutable s_gc_major_w : int;
}

type t = {
  capacity : int;
  slots : slot array;
  index : (string, int) Hashtbl.t;  (* fingerprint -> slot *)
  mutable cursor : int;  (* next slot to assign (ring order) *)
  mutable used : int;
  mutable evictions : int;
  lock : Mutex.t;
}

let locked mu f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

(* latency buckets up to 10s; the metrics default tops out at 1s, too
   coarse for a p95 over slow temporal joins *)
let latency_bounds =
  [| 100; 500; 1_000; 5_000; 10_000; 50_000; 100_000; 500_000; 1_000_000;
     5_000_000; 10_000_000 |]

let create ?(capacity = 512) () =
  let capacity = max 1 capacity in
  (* a private registry backs the per-slot histograms so they never
     collide with the middleware's exported instruments *)
  let reg = Metrics.create () in
  let fresh i =
    {
      slot_hist =
        Metrics.histogram ~bounds:latency_bounds reg
          (Printf.sprintf "ledger_slot_%d" i);
      s_fp = "";
      s_stmt = "";
      s_count = 0;
      s_errors = 0;
      s_hits = 0;
      s_misses = 0;
      s_total_us = 0;
      s_queue_us = 0;
      s_max_us = 0;
      s_rows_out = 0;
      s_gc_minor_w = 0;
      s_gc_major_w = 0;
    }
  in
  {
    capacity;
    slots = Array.init capacity fresh;
    index = Hashtbl.create 64;
    cursor = 0;
    used = 0;
    evictions = 0;
    lock = Mutex.create ();
  }

let capacity t = t.capacity
let size t = locked t.lock (fun () -> t.used)
let evictions t = locked t.lock (fun () -> t.evictions)

(* claim the slot under the ring cursor for [fp], displacing whatever
   fingerprint held it (ring-buffer semantics: under churn beyond
   capacity the oldest assignment goes first) *)
let assign t fp stmt : slot =
  let i = t.cursor in
  t.cursor <- (t.cursor + 1) mod t.capacity;
  let s = t.slots.(i) in
  if s.s_fp <> "" then begin
    Hashtbl.remove t.index s.s_fp;
    t.evictions <- t.evictions + 1
  end
  else t.used <- t.used + 1;
  Metrics.histogram_reset s.slot_hist;
  s.s_fp <- fp;
  s.s_stmt <- stmt;
  s.s_count <- 0;
  s.s_errors <- 0;
  s.s_hits <- 0;
  s.s_misses <- 0;
  s.s_total_us <- 0;
  s.s_queue_us <- 0;
  s.s_max_us <- 0;
  s.s_rows_out <- 0;
  s.s_gc_minor_w <- 0;
  s.s_gc_major_w <- 0;
  Hashtbl.replace t.index fp i;
  s

let observe t ~fp ~stmt ~ok ~disposition ~queue_us ~exec_us ~total_us ~rows_out
    ~gc_minor_w ~gc_major_w =
  locked t.lock @@ fun () ->
  let s =
    match Hashtbl.find_opt t.index fp with
    | Some i -> t.slots.(i)
    | None -> assign t fp stmt
  in
  s.s_count <- s.s_count + 1;
  if not ok then s.s_errors <- s.s_errors + 1;
  (match disposition with
  | "hit" -> s.s_hits <- s.s_hits + 1
  | "miss" -> s.s_misses <- s.s_misses + 1
  | _ -> ());
  s.s_total_us <- s.s_total_us + total_us;
  s.s_queue_us <- s.s_queue_us + queue_us;
  ignore exec_us;
  if total_us > s.s_max_us then s.s_max_us <- total_us;
  s.s_rows_out <- s.s_rows_out + rows_out;
  s.s_gc_minor_w <- s.s_gc_minor_w + gc_minor_w;
  s.s_gc_major_w <- s.s_gc_major_w + gc_major_w;
  Metrics.observe s.slot_hist total_us

type row = {
  r_fp : string;
  r_stmt : string;
  r_count : int;
  r_errors : int;
  r_hits : int;
  r_misses : int;
  r_total_us : int;
  r_queue_us : int;
  r_max_us : int;
  r_rows_out : int;
  r_gc_minor_w : int;
  r_gc_major_w : int;
  r_p50_us : int;
  r_p95_us : int;
}

let hit_ratio (r : row) : float =
  let looked = r.r_hits + r.r_misses in
  if looked = 0 then 0.0 else float_of_int r.r_hits /. float_of_int looked

let rows ?top t : row list =
  let all =
    locked t.lock (fun () ->
        Array.to_list t.slots
        |> List.filter_map (fun s ->
               if s.s_fp = "" then None
               else
                 Some
                   {
                     r_fp = s.s_fp;
                     r_stmt = s.s_stmt;
                     r_count = s.s_count;
                     r_errors = s.s_errors;
                     r_hits = s.s_hits;
                     r_misses = s.s_misses;
                     r_total_us = s.s_total_us;
                     r_queue_us = s.s_queue_us;
                     r_max_us = s.s_max_us;
                     r_rows_out = s.s_rows_out;
                     r_gc_minor_w = s.s_gc_minor_w;
                     r_gc_major_w = s.s_gc_major_w;
                     r_p50_us = Metrics.histogram_quantile s.slot_hist 0.50;
                     r_p95_us = Metrics.histogram_quantile s.slot_hist 0.95;
                   }))
  in
  let sorted =
    List.sort (fun a b -> compare b.r_total_us a.r_total_us) all
  in
  match top with
  | Some n -> List.filteri (fun i _ -> i < n) sorted
  | None -> sorted

let row_to_json (r : row) : Json.t =
  Json.Obj
    [
      ("fingerprint", Json.Str r.r_fp);
      ("stmt", Json.Str r.r_stmt);
      ("count", Json.Int r.r_count);
      ("errors", Json.Int r.r_errors);
      ("hits", Json.Int r.r_hits);
      ("misses", Json.Int r.r_misses);
      ("total_us", Json.Int r.r_total_us);
      ("queue_us", Json.Int r.r_queue_us);
      ("max_us", Json.Int r.r_max_us);
      ("rows_out", Json.Int r.r_rows_out);
      ("gc_minor_w", Json.Int r.r_gc_minor_w);
      ("gc_major_w", Json.Int r.r_gc_major_w);
      ("p50_us", Json.Int r.r_p50_us);
      ("p95_us", Json.Int r.r_p95_us);
    ]

let to_json ?top t : Json.t =
  let rows = rows ?top t in
  Json.Obj
    [
      ("capacity", Json.Int t.capacity);
      ("tracked", Json.Int (size t));
      ("evictions", Json.Int (evictions t));
      ("rows", Json.List (List.map row_to_json rows));
    ]

(* one family per resource, labelled by fingerprint; [top] bounds the
   exposition (the ring holds up to [capacity] fingerprints) *)
let openmetrics ?(top = 20) t : string list =
  let rows = rows ~top t in
  let per f = List.map (fun r -> ([ ("fingerprint", r.r_fp) ], f r)) rows in
  if rows = [] then []
  else
    [
      Openmetrics.gauge ~help:"requests accounted per plan fingerprint"
        "tkr_ledger_requests" (per (fun r -> float_of_int r.r_count));
      Openmetrics.gauge ~help:"cumulative wall time per plan fingerprint"
        "tkr_ledger_wall_us" (per (fun r -> float_of_int r.r_total_us));
      Openmetrics.gauge ~help:"cumulative queue wait per plan fingerprint"
        "tkr_ledger_queue_us" (per (fun r -> float_of_int r.r_queue_us));
      Openmetrics.gauge ~help:"rows returned per plan fingerprint"
        "tkr_ledger_rows_out" (per (fun r -> float_of_int r.r_rows_out));
      Openmetrics.gauge ~help:"GC minor words allocated per plan fingerprint"
        "tkr_ledger_gc_minor_words" (per (fun r -> float_of_int r.r_gc_minor_w));
      Openmetrics.gauge ~help:"result-cache hit ratio per plan fingerprint"
        "tkr_ledger_cache_hit_ratio" (per hit_ratio);
      Openmetrics.gauge ~help:"p95 total latency per plan fingerprint"
        "tkr_ledger_latency_p95_us" (per (fun r -> float_of_int r.r_p95_us));
    ]
