(** Flight-recording capture: a versioned JSONL document, one line per
    finished request, written by the serve tier when recording is on.

    The first line is a {!header} (magic, format version, the built-in
    workload the catalog came from); every further line is an {!entry}.
    Entries are appended at request *finish* time — under concurrency the
    file is in completion order — and each carries the [seq] stamped at
    admission, so {!read_file} restores arrival order.

    An entry pins everything a deterministic replay needs: the canonical
    wire statement, the session that issued it (per-session program order
    is the server's FIFO guarantee), the [(table, version)] dependency
    vector and catalog epoch observed at execution — the same snapshot
    -equivalence key the result cache proves byte-identity with — and an
    MD5 {!digest} of the exact response payload bytes (floats travel as
    [%h] literals on the wire, so the digest is bit-exact).  The
    remaining fields (queue/exec split, GC word deltas, rows in/out,
    cache disposition) feed the resource ledger and offline analysis.

    The recorder mirrors [Tkr_tel.Tel]'s sink machinery: {!disabled} is a
    shared no-op value, {!enabled} is a physical-equality check, and call
    sites guard entry construction on it so recording off costs
    nothing. *)

module Json = Tkr_obs.Json

exception Format_error of string
(** Bad magic, unsupported version, or a malformed record line. *)

val format_version : int

val digest : string -> string
(** MD5 hex of the exact payload bytes (the string {!Tkr_serve.Wire}
    caches and splices into ok frames). *)

val digest_error : code:string -> message:string -> string
(** The digest recorded for error responses: code and message are the
    only stable bytes of an error frame. *)

type header = {
  h_version : int;
  h_started_ms : int;  (** wall-clock ms when the capture began *)
  h_workload : string option;
      (** built-in catalog the server was started with, when known —
          replay rebuilds the same initial database from it *)
  h_source : string;  (** free-form producer tag, e.g. ["tkr_cli serve"] *)
}

val header : ?workload:string -> ?source:string -> unit -> header
val header_to_json : header -> Json.t

val header_of_json : Json.t -> header
(** @raise Format_error on bad magic or an unsupported version. *)

type entry = {
  e_seq : int;  (** global arrival order, stamped at admission *)
  e_session : int;
  e_req_id : int;  (** the client's request id *)
  e_trace_id : string option;
  e_stmt : string;  (** canonical wire statement *)
  e_deadline_ms : int option;
  e_arrive_ms : int;  (** wall-clock ms at arrival *)
  e_arrive_ns : int64;  (** monotonic ns at arrival, for [--paced] replay *)
  e_queue_us : int;  (** arrival to execution start *)
  e_exec_us : int;  (** execution start to finish *)
  e_total_us : int;
  e_status : string;  (** ["ok"] or the wire error code *)
  e_cached : bool;
  e_disposition : string;  (** hit | miss | bypass | off | error *)
  e_fp : string;  (** plan fingerprint *)
  e_epoch : int;  (** middleware catalog epoch at execution *)
  e_deps : (string * int) list;  (** table-version vector at execution *)
  e_rows_in : int;  (** total cardinality of the dependency tables *)
  e_rows_out : int;
  e_gc_minor_w : int;  (** GC minor words allocated during the request *)
  e_gc_major_w : int;
  e_digest : string;  (** response digest ({!digest} / {!digest_error}) *)
}

val entry_to_json : entry -> Json.t

val entry_of_json : Json.t -> entry
(** @raise Format_error on a record without [stmt]. *)

(** {2 Recorder} *)

type sink =
  | Null
  | Chan of out_channel  (** one flushed JSONL line per record *)
  | Fn of (Json.t -> unit)  (** tests and embedders *)

type t

val disabled : t
(** The shared no-op recorder: [enabled disabled = false] and {!write}
    returns immediately. *)

val create : ?header:header -> sink -> t
(** Open a recorder and emit the header line.  The caller owns the
    channel (if any) and closes it after {!close}. *)

val enabled : t -> bool
(** [false] for {!disabled} and closed recorders.  Guard entry
    construction on this to keep disabled recording allocation-free. *)

val write : t -> entry -> unit

val recorded : t -> int
(** Entries written so far. *)

val close : t -> unit
(** Flush and disable.  Idempotent; does not close the channel. *)

(** {2 Reading} *)

val read_channel : in_channel -> header * entry list
(** Parse a recording; entries come back sorted by [e_seq] (arrival
    order).
    @raise Format_error on bad magic/version or malformed lines. *)

val read_file : string -> header * entry list
